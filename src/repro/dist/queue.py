"""Lease-based job queue over a campaign manifest directory.

The campaign manifest (:mod:`repro.campaign.manifest`) is a single JSON file
rewritten whole on every transition — perfect for one coordinator, useless
for N concurrent writers (last writer wins, so parallel ``mark_running``
calls silently eat each other's leases).  This queue gives a campaign a
*multi-writer* control plane next to the manifest without touching it:

    <manifest_dir>/<campaign_id>.queue/
        claims/<cell_id>.t<token>.json     one file per claim generation
        results/<cell_id>.json             one file per completed cell

Every coordination primitive reduces to a POSIX filesystem guarantee, so the
queue needs no server and works on any shared directory (local disk for
same-host workers, NFS-style mounts across hosts):

**Atomic claim with fencing tokens.**  A claim on cell C at generation *t*
is the file ``claims/C.t<t>.json``, created with ``O_CREAT|O_EXCL`` — the
filesystem picks exactly one winner per ``(cell, token)``.  The live claim is
the one with the *highest* token; to claim a cell a worker reads the current
top claim, verifies it is stale (:func:`repro.campaign.manifest.lease_is_stale`
— dead pid on this host, or heartbeat older than the TTL), and races to
create generation ``t+1``.  Losing the race is just ``FileExistsError``.  The
token is a per-cell fencing token: it only ever grows, every completion
records the token it ran under, and a worker that discovers a higher
generation than its own knows it has been deposed.

**Heartbeat renewal.**  The claim owner periodically rewrites its claim file
(atomic temp + ``os.replace``) with a fresh heartbeat.  The scheduler
piggybacks this on its per-record progress callback, exactly like manifest
lease heartbeats.

**TTL re-queue.**  A claim whose lease is stale does not block the cell: the
next claimer supersedes it at the next token ("stealing" the cell).  A
SIGKILLed same-host joiner is stolen from immediately (dead pid); a vanished
remote host after :data:`repro.campaign.manifest.LEASE_TTL_SECONDS` (override
with ``$AUTOQ_REPRO_LEASE_TTL`` — tests and smoke runs use short TTLs).

**Idempotent completion.**  A finished cell is published by hard-linking a
fully written temp file to ``results/<cell_id>.json`` — atomic and
exclusive, so the *first* writer wins and every later completion of the same
cell (a deposed worker finishing anyway) is discarded.  Verdicts are
deterministic, so duplicates are expected to agree: each result carries a
:func:`result_fingerprint` over the verdict counters, and a discarded
completion whose fingerprint differs from the winner's is counted as a
``conflict`` (a real red flag) instead of a benign ``duplicate``.

Claim I/O runs under the shared :class:`repro.faults.RetryPolicy` and passes
through the ``queue.claim`` fault-injection site, so the chaos suite can
exercise claim races, claim crashes, and slow claims deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..campaign.manifest import LEASE_TTL_SECONDS, lease_is_stale
from ..faults import DEFAULT_STORE_RETRY, RetryPolicy, inject

__all__ = [
    "QUEUE_SUFFIX",
    "CLAIM_DIR",
    "RESULT_DIR",
    "LEASE_TTL_ENV",
    "QueueLease",
    "JobQueue",
    "queue_dir_for",
    "result_fingerprint",
]

#: the queue lives next to its manifest: ``<manifest_dir>/<campaign_id>.queue/``
QUEUE_SUFFIX = ".queue"
CLAIM_DIR = "claims"
RESULT_DIR = "results"

#: overrides the stale-lease TTL (seconds) for claims — production default is
#: :data:`repro.campaign.manifest.LEASE_TTL_SECONDS`; chaos tests and smoke
#: runs shrink it so cross-host abandonment is observable in seconds
LEASE_TTL_ENV = "AUTOQ_REPRO_LEASE_TTL"

_CLAIM_NAME = re.compile(r"^(?P<cell>.+)\.t(?P<token>\d+)\.json$")


def queue_dir_for(manifest_dir: str, campaign_id: str) -> str:
    """Where the fabric queue of ``campaign_id`` lives under ``manifest_dir``."""
    return os.path.join(manifest_dir, f"{campaign_id}{QUEUE_SUFFIX}")


def default_lease_ttl() -> float:
    """The claim TTL: ``$AUTOQ_REPRO_LEASE_TTL`` or the manifest default."""
    override = os.environ.get(LEASE_TTL_ENV)
    if override:
        try:
            value = float(override)
        except ValueError:
            return LEASE_TTL_SECONDS
        if value > 0:
            return value
    return LEASE_TTL_SECONDS


def result_fingerprint(summary: Dict) -> str:
    """Digest of the verdict-bearing part of a cell summary.

    Two completions of the same cell must agree on this — verification is
    deterministic — so the fingerprint is what separates a benign duplicate
    (deposed worker finished anyway) from a conflicting one.  Timing fields
    and worker-local counters are deliberately excluded.
    """
    material = json.dumps(
        {key: summary.get(key)
         for key in ("jobs", "holds", "violated", "unsupported", "errors",
                     "reference_violated")},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class _ClaimLost(Exception):
    """Internal: another worker won the ``O_EXCL`` race for this token.

    Deliberately not an ``OSError`` — losing a race is a deterministic
    outcome, and the retry policy (allowlist: ``OSError``) must not burn
    attempts re-running it.
    """


@dataclass
class QueueLease:
    """A successful claim: proof of (current) ownership of one cell.

    ``token`` is the cell's fencing token at claim time; the lease is only
    as good as its heartbeat, so long cells must :meth:`JobQueue.renew` it.
    """

    cell_id: str
    token: int
    path: str
    owner: Dict = field(default_factory=dict)
    #: True when this claim superseded another worker's stale claim
    stolen: bool = False
    #: successful heartbeat renewals of this lease (rolled into the cell's
    #: ``lease_renewals`` fabric counter at completion)
    renewals: int = 0


class JobQueue:
    """Multi-writer cell queue of one campaign (see the module docstring).

    One instance per worker process; instances coordinate purely through the
    queue directory, so any number of them — across processes and hosts that
    share the manifest directory — can attach to the same campaign.
    """

    def __init__(self, manifest_dir: str, campaign_id: str,
                 lease_ttl: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None):
        self.campaign_id = campaign_id
        self.directory = queue_dir_for(manifest_dir, campaign_id)
        self.claim_dir = os.path.join(self.directory, CLAIM_DIR)
        self.result_dir = os.path.join(self.directory, RESULT_DIR)
        self.lease_ttl = default_lease_ttl() if lease_ttl is None else lease_ttl
        # claim/complete I/O is small-file metadata traffic, so the store's
        # quick retry profile fits better than the client's patient one
        self.retry = retry if retry is not None else DEFAULT_STORE_RETRY
        self.counters = {
            "cells_claimed": 0,
            "cells_stolen": 0,
            "cells_requeued": 0,
            "lease_renewals": 0,
            "completions": 0,
            "duplicates": 0,
            "conflicts": 0,
        }
        os.makedirs(self.claim_dir, exist_ok=True)
        os.makedirs(self.result_dir, exist_ok=True)

    def reset(self) -> None:
        """Drop every claim and result — a fresh campaign reusing an id must
        not inherit the previous sweep's completions."""
        for directory in (self.claim_dir, self.result_dir):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass

    # ----------------------------------------------------------- inspection
    @staticmethod
    def _lease() -> Dict:
        # same shape as the manifest's cell leases, so lease_is_stale applies
        import socket

        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "heartbeat": time.time(),
        }

    def _claim_files(self, cell_id: str) -> List[Tuple[int, str]]:
        """``(token, path)`` of every claim generation of a cell, ascending."""
        claims: List[Tuple[int, str]] = []
        try:
            names = os.listdir(self.claim_dir)
        except OSError:
            return claims
        for name in names:
            match = _CLAIM_NAME.match(name)
            if match is not None and match.group("cell") == cell_id:
                claims.append((int(match.group("token")),
                               os.path.join(self.claim_dir, name)))
        claims.sort()
        return claims

    def current_claim(self, cell_id: str) -> Tuple[int, Optional[Dict]]:
        """The cell's top ``(token, lease)``; ``(0, None)`` when never claimed.

        An unreadable or garbled claim file reads as ``(token, None)`` — a
        lease nobody can parse is stale by definition.
        """
        claims = self._claim_files(cell_id)
        if not claims:
            return 0, None
        token, path = claims[-1]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return token, None
        lease = payload.get("lease") if isinstance(payload, dict) else None
        return token, lease if isinstance(lease, dict) else None

    def _result_path(self, cell_id: str) -> str:
        return os.path.join(self.result_dir, f"{cell_id}.json")

    def result(self, cell_id: str) -> Optional[Dict]:
        """The accepted completion record of a cell (``None`` while unfinished).

        A result file that fails to parse is deleted: completions are atomic
        hard-links of fully written temp files, so a garbled record means
        on-disk damage, and leaving it would block the cell forever.
        """
        path = self._result_path(cell_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return record if isinstance(record, dict) else None

    def results(self, cell_ids: List[str]) -> Dict[str, Dict]:
        """Completion records by cell id, for the coordinator's roll-up."""
        records = {}
        for cell_id in cell_ids:
            record = self.result(cell_id)
            if record is not None:
                records[cell_id] = record
        return records

    def completed_cell_ids(self) -> List[str]:
        try:
            names = os.listdir(self.result_dir)
        except OSError:
            return []
        return sorted(name[: -len(".json")] for name in names
                      if name.endswith(".json"))

    def pending_cells(self, cell_ids: List[str]) -> List[str]:
        """Cells still claimable: no completion yet and no live claim.

        Order is preserved from ``cell_ids`` (the scheduler passes them
        cheapest-first, so every worker drains in the same priority order).
        """
        done = set(self.completed_cell_ids())
        pending = []
        for cell_id in cell_ids:
            if cell_id in done:
                continue
            _token, lease = self.current_claim(cell_id)
            if lease is not None and not lease_is_stale(lease, ttl=self.lease_ttl):
                continue
            pending.append(cell_id)
        return pending

    # ---------------------------------------------------------------- claim
    def _write_claim(self, path: str, payload: Dict) -> None:
        """The ``O_CREAT|O_EXCL`` race; the ``queue.claim`` fault site."""
        inject("queue.claim")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError as error:
            raise _ClaimLost(path) from error
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)

    def claim(self, cell_id: str) -> Optional[QueueLease]:
        """Try to take ownership of a cell; ``None`` when unavailable.

        Unavailable means: already completed, currently held by a live
        worker, or lost the creation race to a concurrent claimer.  The
        caller just moves on to the next pending cell — no state to clean
        up, claiming is all-or-nothing.
        """
        if os.path.exists(self._result_path(cell_id)):
            return None
        top_token, top_lease = self.current_claim(cell_id)
        if top_token and top_lease is not None and not lease_is_stale(
                top_lease, ttl=self.lease_ttl):
            return None
        token = top_token + 1
        owner = self._lease()
        stolen = bool(
            top_token
            and (not top_lease or int(top_lease.get("pid") or -1) != os.getpid()
                 or top_lease.get("host") != owner["host"])
        )
        path = os.path.join(self.claim_dir, f"{cell_id}.t{token}.json")
        payload = {
            "campaign_id": self.campaign_id,
            "cell_id": cell_id,
            "token": token,
            "lease": owner,
        }
        try:
            self.retry.call(self._write_claim, path, payload)
        except _ClaimLost:
            return None
        except OSError:
            return None
        self.counters["cells_claimed"] += 1
        if top_token:
            # the cell went back into the queue at least once
            self.counters["cells_requeued"] += 1
        if stolen:
            self.counters["cells_stolen"] += 1
        # superseded generations are dead weight; removing them is safe (the
        # top token only grows) and keeps the claim dir at one file per cell
        for _old_token, old_path in self._claim_files(cell_id)[:-1]:
            try:
                os.unlink(old_path)
            except OSError:
                pass
        return QueueLease(cell_id=cell_id, token=token, path=path,
                          owner=owner, stolen=stolen)

    # ---------------------------------------------------------------- renew
    def renew(self, lease: QueueLease) -> bool:
        """Refresh the lease heartbeat; ``False`` when ownership was lost.

        Ownership is lost when a higher claim generation exists (this worker
        was presumed dead and the cell stolen) — the deposed worker may
        still finish and complete (idempotently), but should stop renewing.
        """
        top_token, _top_lease = self.current_claim(lease.cell_id)
        if top_token > lease.token:
            return False
        lease.owner = self._lease()
        payload = {
            "campaign_id": self.campaign_id,
            "cell_id": lease.cell_id,
            "token": lease.token,
            "lease": lease.owner,
        }
        text = json.dumps(payload, sort_keys=True, indent=2)
        try:
            fd, temp_path = tempfile.mkstemp(dir=self.claim_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, lease.path)
        except OSError:
            return False
        lease.renewals += 1
        self.counters["lease_renewals"] += 1
        return True

    # ------------------------------------------------------------- complete
    def complete(self, lease: QueueLease, summary: Dict,
                 report_path: Optional[str] = None) -> str:
        """Publish a finished cell; returns the outcome.

        ``"accepted"``
            this completion is the cell's result (first writer);
        ``"duplicate"``
            another worker already completed the cell with the same verdict
            fingerprint — this one is discarded, totals unaffected;
        ``"conflict"``
            another completion won *and disagrees* on the verdicts — still
            discarded (first writer wins), but counted separately because
            deterministic verification should make this impossible.
        """
        fingerprint = result_fingerprint(summary)
        record = {
            "campaign_id": self.campaign_id,
            "cell_id": lease.cell_id,
            "token": lease.token,
            "fingerprint": fingerprint,
            "summary": summary,
            "report_path": report_path,
            "worker": dict(lease.owner),
            "stolen": lease.stolen,
            "renewals": lease.renewals,
            "completed_at": time.time(),
        }
        target = self._result_path(lease.cell_id)
        fd, temp_path = tempfile.mkstemp(dir=self.result_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True, indent=2)
            # hard-link: atomic AND exclusive, unlike os.replace — the first
            # completion wins and every later one fails with FileExistsError
            os.link(temp_path, target)
        except FileExistsError:
            existing = self.result(lease.cell_id) or {}
            if existing.get("fingerprint") == fingerprint:
                self.counters["duplicates"] += 1
                return "duplicate"
            self.counters["conflicts"] += 1
            return "conflict"
        finally:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
        # ownership is settled; drop this cell's claim files so crashed-worker
        # scans (pending_cells) stop parsing leases for finished work
        for _token, path in self._claim_files(lease.cell_id):
            try:
                os.unlink(path)
            except OSError:
                pass
        self.counters["completions"] += 1
        return "accepted"

    # ------------------------------------------------------------ accounting
    def counter_snapshot(self) -> Dict[str, int]:
        return dict(self.counters)
