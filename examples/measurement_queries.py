#!/usr/bin/env python3
"""Diagnose circuit outputs with TA-level analysis queries and measurement.

The verification problem of the paper compares the output automaton against a
post-condition automaton.  Many lighter questions can be answered directly on
the output automaton itself; this example runs the GHZ-preparation circuit
over a *set* of inputs and asks:

* which amplitudes can appear at a given basis position,
* which basis positions can be populated at all (the support),
* whether a measurement outcome is certain for every reachable output,
* what the post-measurement state set looks like (the TA-level restriction),
* the exact measurement probabilities of a single simulated run.

Run with:  python examples/measurement_queries.py
"""

from repro.benchgen import ghz_circuit
from repro.core import (
    amplitudes_at_basis,
    constant_output,
    measurement_probability_bounds,
    outcome_is_certain,
    possible_support,
    post_measurement_automaton,
    run_circuit,
    zero_state_precondition,
)
from repro.simulator import simulate_circuit
from repro.simulator.measurement import collapse, measurement_probability, outcome_distribution
from repro.states import QuantumState
from repro.ta import basis_product_ta


def main() -> None:
    num_qubits = 4
    circuit = ghz_circuit(num_qubits)
    print(f"circuit: {circuit.summary()}")

    # --- run over the single |0...0> input -------------------------------
    single = run_circuit(circuit, zero_state_precondition(num_qubits)).output
    print(f"\noutput TA over {{|0...0>}}: {single.size_summary()}")
    print(f"constant output: {constant_output(single)}")
    print(f"amplitudes at |0000>: {sorted(map(str, amplitudes_at_basis(single, '0000')))}")
    print(f"amplitudes at |0001>: {sorted(map(str, amplitudes_at_basis(single, '0001')))}")
    print(f"support: {sorted(possible_support(single))}")
    print(f"measuring qubit 0 gives 0 with certainty: {outcome_is_certain(single, 0, 0)}")
    print(f"probability bounds of qubit 0 == 0: {measurement_probability_bounds(single, 0, 0)}")

    # --- TA-level measurement: collapse the whole set at once ------------
    collapsed = post_measurement_automaton(single, 0, 1)
    print(f"\nafter observing qubit 0 = 1 (un-normalised) TA: {collapsed.size_summary()}")
    print(f"now qubit {num_qubits - 1} = 1 is certain: "
          f"{outcome_is_certain(collapsed, num_qubits - 1, 1)}")

    # --- run over a *set* of inputs: first qubit free, rest |0> ----------
    inputs = basis_product_ta(num_qubits, [(0, 1)] + [(0,)] * (num_qubits - 1))
    many = run_circuit(circuit, inputs).output
    print(f"\noutput TA over 2 inputs: {many.size_summary()}")
    print(f"constant over those inputs: {constant_output(many) is not None}")
    print(f"amplitudes at |1111>: {sorted(map(str, amplitudes_at_basis(many, '1111')))}")
    low, high = measurement_probability_bounds(many, num_qubits - 1, 1)
    print(f"probability that the last qubit reads 1: between {low:.2f} and {high:.2f}")

    # --- exact single-state measurement (Section 2.1 semantics) ----------
    state = simulate_circuit(circuit)
    print(f"\nsimulated output state: {state}")
    print(f"P[qubit 0 = 0] = {measurement_probability(state, 0, 0):.3f}")
    post = collapse(state, 0, 0)
    print(f"post-measurement state (renormalised): {post}")
    print(f"full outcome distribution: { {''.join(map(str, b)): p for b, p in outcome_distribution(state).items()} }")


if __name__ == "__main__":
    main()
