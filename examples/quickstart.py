#!/usr/bin/env python3
"""Quickstart: verify the Bell-state preparation circuit from the paper's overview.

This is the running example of the paper (Fig. 1): the EPR circuit should turn
the basis state |00> into the maximally entangled Bell state
(|00> + |11>)/sqrt(2).  We express that as the Hoare-style triple

    { |00> }   H(q0); CNOT(q0, q1)   { (|00> + |11>)/sqrt(2) }

encode the pre- and post-condition as tree automata, run the circuit over the
pre-condition TA, and check language equivalence against the post-condition.
We then inject a bug and show how the framework produces a witness state.

Run with:  python examples/quickstart.py
"""

from repro import (
    Circuit,
    bell_postcondition,
    check_circuit_equivalence,
    simulate_circuit,
    verify_triple,
    zero_state_precondition,
)
from repro.ta import basis_state_ta


def main() -> None:
    # 1. Build the EPR circuit (Fig. 1c of the paper).
    epr = Circuit(2, name="epr")
    epr.add("h", 0)
    epr.add("cx", 0, 1)
    print(f"circuit under verification: {epr.summary()}")

    # 2. Build the specification: pre-condition {|00>}, post-condition {Bell}.
    precondition = zero_state_precondition(2)
    postcondition = bell_postcondition()
    print(f"pre-condition TA:  {precondition.size_summary()} (states/transitions)")
    print(f"post-condition TA: {postcondition.size_summary()}")

    # 3. Verify the triple {P} C {Q}.
    result = verify_triple(precondition, epr, postcondition)
    print(f"\n{{P}} C {{Q}} verdict: {'HOLDS' if result.holds else 'VIOLATED'}")
    print(f"output TA: {result.output.size_summary()}, "
          f"analysis {result.statistics.analysis_seconds:.3f}s, "
          f"comparison {result.comparison_seconds:.3f}s")

    # 4. Cross-check with the exact simulator (SliQSim-style baseline).
    simulated = simulate_circuit(epr)
    print(f"simulator output: {simulated}")
    print(f"output TA accepts the simulated state: {result.output.accepts(simulated)}")

    # 5. Inject a bug (an extra Z gate) and watch the framework catch it.
    buggy = epr.copy(name="epr_buggy").add("z", 1)
    broken = verify_triple(precondition, buggy, postcondition)
    print(f"\nbuggy circuit verdict: {'HOLDS' if broken.holds else 'VIOLATED'}")
    print(f"witness ({broken.witness_kind}): {broken.witness}")

    # 6. The same bug found by circuit non-equivalence checking (Section 7.2).
    outcome = check_circuit_equivalence(epr, buggy, basis_state_ta(2, "00"))
    print(f"\nnon-equivalence check: different outputs = {outcome.non_equivalent}")
    print(f"distinguishing output state: {outcome.witness}")


if __name__ == "__main__":
    main()
