#!/usr/bin/env python3
"""Verify Grover's search against pre/post-conditions (the Table 2 use case).

The paper's headline verification result is Grover's algorithm: the set of
output states reached from |0...0> must match the expected "one high-amplitude
string, everything else at a common low amplitude" shape, with the ancillas
uncomputed and the kickback qubit back in a classical state.

This example verifies:

* Grover-Sing: a single hidden string, one TA run per circuit,
* Grover-All (Appendix D): the oracle answer is read from extra input qubits,
  so a single TA run covers all 2^m oracles simultaneously — something a
  simulator can only do with 2^m separate runs.

Run with:  python examples/grover_verification.py [m]
"""

import sys
import time

from repro.benchgen import grover_all_benchmark, grover_single_benchmark
from repro.core import AnalysisMode, verify_triple
from repro.simulator import StateVectorSimulator


def verify(benchmark, mode: str) -> None:
    start = time.perf_counter()
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition, mode=mode)
    elapsed = time.perf_counter() - start
    print(f"  [{mode:<11}] {'HOLDS' if result.holds else 'VIOLATED'}   "
          f"output TA {result.output.size_summary():>12}   "
          f"analysis {result.statistics.analysis_seconds:6.2f}s   "
          f"equality {result.comparison_seconds:5.2f}s   total {elapsed:6.2f}s")


def simulator_sweep(benchmark) -> None:
    """What the SliQSim baseline has to do: one run per pre-condition state."""
    simulator = StateVectorSimulator()
    inputs = benchmark.precondition.enumerate_states()
    start = time.perf_counter()
    for state in inputs:
        simulator.run(benchmark.circuit, state)
    elapsed = time.perf_counter() - start
    print(f"  [simulator  ] swept {len(inputs)} input state(s) in {elapsed:6.2f}s")


def main() -> None:
    work_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    single = grover_single_benchmark(work_qubits, secret="1" * work_qubits)
    print(f"{single.name}: {single.description}")
    print(f"  circuit: {single.circuit.num_qubits} qubits, {single.circuit.num_gates} gates")
    verify(single, AnalysisMode.HYBRID)
    simulator_sweep(single)

    all_oracles = grover_all_benchmark(max(2, work_qubits - 1))
    print(f"\n{all_oracles.name}: {all_oracles.description}")
    print(f"  circuit: {all_oracles.circuit.num_qubits} qubits, {all_oracles.circuit.num_gates} gates")
    verify(all_oracles, AnalysisMode.HYBRID)
    simulator_sweep(all_oracles)
    print("\nNote how the simulator cost scales with the number of oracle strings while")
    print("the TA-based analysis handles the whole set in a single symbolic run.")


if __name__ == "__main__":
    main()
