#!/usr/bin/env python3
"""Run a parallel bug-hunting campaign over a family of mutated circuits.

This is the paper's Table 3 workload at scale: take one verified benchmark
instance (here Grover's search), create many buggy copies with the paper's
fault model (one extra random gate) plus gate removal and operand swapping,
and verify every copy against the family's ``{P} C {Q}`` specification.  The
campaign engine fans the jobs out over worker processes, streams one JSON line
per verdict into a report, and caches verdicts on disk keyed by the circuit /
precondition fingerprints — so re-running the same campaign only re-verifies
circuits that actually changed.

Run with:  python examples/campaign_hunt.py [num_mutants] [workers]
"""

import sys
import tempfile

from repro.campaign import CampaignConfig, read_report, run_campaign


def main() -> None:
    num_mutants = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    with tempfile.TemporaryDirectory() as scratch:
        config = CampaignConfig(
            family="grover",
            mutants=num_mutants,
            mutation_kinds=("insert", "remove", "swap-operands"),
            workers=workers,
            report_path=f"{scratch}/campaign.jsonl",
            cache_dir=f"{scratch}/cache",
        )
        summary = run_campaign(config)
        print(f"campaign over {summary.benchmark}: {summary.jobs} jobs, "
              f"{summary.violated} bugs caught, {summary.holds} mutants survived, "
              f"{summary.wall_seconds:.2f}s with {workers} worker(s)")

        # The JSONL report carries one record per mutant: verdict, witness
        # state, per-gate timing percentiles, and the fingerprints that key
        # the on-disk cache.
        survivors = [
            record for record in read_report(config.report_path)
            if record["verdict"] == "holds" and record["mutation_kind"] != "reference"
        ]
        print("\nmutants the specification did NOT catch (semantically harmless edits):")
        for record in survivors[:10]:
            print(f"  {record['job_id']:>40}  {record['mutation']}")

        # A second run answers every job from the cache.
        rerun = run_campaign(config)
        print(f"\nre-run: {rerun.cache_hits}/{rerun.jobs} jobs answered from the cache "
              f"in {rerun.wall_seconds:.2f}s")


if __name__ == "__main__":
    main()
