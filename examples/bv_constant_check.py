#!/usr/bin/env python3
"""Bernstein-Vazirani: verifying a whole family and "finding constants".

Two things are demonstrated here:

1. The BV verification of Table 2 — for several hidden strings we check the
   triple  { |0...0> }  BV_s  { |s, 1> }  and report paper-style rows (TA sizes
   before/after, analysis and comparison times).

2. The "finding constants" use-case mentioned in the paper's introduction:
   will a circuit evaluate to the *same* output state for every input in P?
   We check it by running the circuit over the whole input set and testing
   whether the output TA's language is a singleton.

Run with:  python examples/bv_constant_check.py [n]
"""

import sys
import time

from repro.benchgen import bv_benchmark, bv_circuit, default_hidden_string
from repro.core import classical_product_condition, run_circuit, verify_triple


def table2_style_rows(length: int) -> None:
    print(f"{'hidden string':<16} {'#q':>3} {'#G':>4} {'before':>10} {'after':>10} "
          f"{'analysis':>9} {'=':>6} {'verdict':>8}")
    for hidden in (default_hidden_string(length), "1" * length, "0" * (length - 1) + "1"):
        benchmark = bv_benchmark(length, hidden=hidden)
        start = time.perf_counter()
        result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        total = time.perf_counter() - start
        print(f"{hidden:<16} {benchmark.num_qubits:>3} {benchmark.num_gates:>4} "
              f"{benchmark.precondition.size_summary():>10} {result.output.size_summary():>10} "
              f"{result.statistics.analysis_seconds:>8.2f}s {result.comparison_seconds:>5.2f}s "
              f"{'HOLDS' if result.holds else 'FAIL':>8}")
        del total


def constant_check(length: int) -> None:
    """Is the BV output constant over all data-register inputs?  (It is not —
    but it *is* constant over the single |0...0> input, trivially.)"""
    circuit = bv_circuit(default_hidden_string(length))
    free_inputs = classical_product_condition(
        [{0, 1}] * length + [{0}]  # data register free, ancilla fixed to |0>
    )
    result = run_circuit(circuit, free_inputs)
    outputs = result.output.enumerate_states(limit=2 ** (length + 1))
    print(f"\nconstant check over {2 ** length} data inputs: "
          f"{len(outputs)} distinct output state(s) -> "
          f"{'constant' if len(outputs) == 1 else 'not constant'}")


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    table2_style_rows(length)
    constant_check(min(length, 5))


if __name__ == "__main__":
    main()
