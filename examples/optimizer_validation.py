#!/usr/bin/env python3
"""Validate the output of a (deliberately unreliable) circuit optimizer.

The paper motivates non-equivalence checking as a way to catch optimizer bugs:
"it is essential to be able to check that an output of an optimizer is
functionally equivalent to its input".  This example runs a small peephole
optimizer over benchmark circuits and uses the TA framework to compare the
optimized circuit against the original.

With ``--break-it`` the optimizer additionally applies an unsound rewrite
("drop Z gates — they don't change measurement outcomes"), and the framework
produces a witness demonstrating the miscompilation on the phase-sensitive
circuit.

Run with:  python examples/optimizer_validation.py [--break-it]
"""

import sys

from repro.benchgen import gf2_multiplier, grover_single_circuit, ripple_carry_adder
from repro.circuits import PeepholeOptimizer
from repro.core import check_circuit_equivalence
from repro.ta import all_basis_states_ta, basis_state_ta


def validate(name: str, circuit, unsound: bool, inputs) -> None:
    optimizer = PeepholeOptimizer(enable_unsound_rewrites=unsound)
    optimized, report = optimizer.optimize(circuit)
    print(f"{name}: {circuit.num_gates} -> {optimized.num_gates} gates "
          f"({report.cancellations} cancellations, {report.fusions} fusions, "
          f"{report.unsound_drops} unsound drops)")
    outcome = check_circuit_equivalence(circuit, optimized, inputs)
    if outcome.non_equivalent:
        print(f"  MISCOMPILATION DETECTED in {outcome.analysis_seconds:.2f}s")
        print(f"  witness output state ({outcome.witness_side}): {outcome.witness}")
    else:
        print(f"  optimized circuit preserves the output set "
              f"({outcome.analysis_seconds:.2f}s analysis)")


def main() -> None:
    unsound = "--break-it" in sys.argv
    if unsound:
        print("running with the unsound rewrite enabled — expect a miscompilation\n")

    adder = ripple_carry_adder(3)
    validate("ripple-carry adder (3 bits)", adder, unsound, all_basis_states_ta(adder.num_qubits))

    multiplier = gf2_multiplier(3)
    validate("GF(2^3) multiplier", multiplier, unsound, all_basis_states_ta(multiplier.num_qubits))

    grover = grover_single_circuit(2, "11")
    # redundant gates to give the optimizer something to chew on
    padded = grover.copy(name="grover_padded")
    padded.add("h", 0).add("h", 0).add("t", 3).add("t", 3).add("sdg", 3).add("z", 1)
    validate(
        "Grover(2) with redundant tail (phase-sensitive)",
        padded,
        unsound,
        basis_state_ta(padded.num_qubits, (0,) * padded.num_qubits),
    )


if __name__ == "__main__":
    main()
