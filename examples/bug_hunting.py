#!/usr/bin/env python3
"""Hunt for an injected bug in an optimized/mutated circuit (the Table 3 use case).

The scenario the paper motivates: a circuit optimizer (or a manual rewrite)
produced a new version of a circuit, and we want a *fast* check that can prove
the two versions are NOT equivalent, even when full equivalence checkers run
out of steam.  The strategy (Section 7.2):

1. start with an input TA containing a single basis state,
2. run both circuits over it and compare the output TAs,
3. if they agree, add one more nondeterministic transition to the input TA
   (free one more qubit) and repeat.

This example injects one random gate into a reversible-arithmetic benchmark
and compares the bug hunter against the path-sum checker (Feynman-style) and
random basis-state stimuli (QCEC-style).

Run with:  python examples/bug_hunting.py [seed]
"""

import sys

from repro.baselines import PathSumChecker, RandomStimuliChecker
from repro.benchgen import gf2_multiplier
from repro.circuits import inject_random_gate
from repro.core import IncrementalBugHunter


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    reference = gf2_multiplier(4)
    buggy, mutation = inject_random_gate(reference, seed=seed)
    print(f"reference circuit: {reference.summary()}")
    print(f"injected bug:      {mutation}")

    # --- the paper's approach: incremental TA-based bug hunting -------------
    hunter = IncrementalBugHunter(seed=seed)
    hunt = hunter.hunt(reference, buggy)
    print("\n[AutoQ-style bug hunter]")
    print(f"  bug found: {hunt.bug_found} after {hunt.iterations} iteration(s), "
          f"{hunt.total_seconds:.2f}s, input set size {hunt.final_input_size}")
    if hunt.witness is not None:
        print(f"  witness output state (reachable in {hunt.witness_side} circuit):")
        print(f"    {hunt.witness}")

    # --- baseline 1: path-sum equivalence checking (Feynman-style) ----------
    pathsum = PathSumChecker().check_equivalence(reference, buggy)
    print("\n[path-sum checker]")
    print(f"  verdict: {pathsum.verdict} in {pathsum.seconds:.2f}s")

    # --- baseline 2: random basis-state stimuli (QCEC-style) ----------------
    stimuli = RandomStimuliChecker(num_stimuli=16, seed=seed).check_equivalence(reference, buggy)
    print("\n[random stimuli checker]")
    print(f"  verdict: {stimuli.verdict} after {stimuli.stimuli_tried} stimuli, "
          f"{stimuli.seconds:.2f}s")
    if stimuli.witness_input is not None:
        print(f"  distinguishing input: |{''.join(map(str, stimuli.witness_input))}>")

    print("\nSummary: the TA-based hunter both *decides* non-equivalence on the explored")
    print("input set and returns a concrete distinguishing output state for diagnosis.")


if __name__ == "__main__":
    main()
