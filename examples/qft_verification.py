#!/usr/bin/env python3
"""Verify the approximate quantum Fourier transform with tree automata.

The algebraic amplitude encoding of the paper natively represents phases that
are multiples of pi/4, so the QFT truncated at the controlled-S / controlled-T
rotations (the degree-3 *approximate* QFT) stays inside the supported gate
set.  This example checks two properties of that circuit family:

1. ``{|0^n>} AQFT {uniform superposition}`` — on the all-zero input no
   controlled phase fires and the output is the exact uniform superposition;
2. ``{all basis states} AQFT ; AQFT† {all basis states}`` — the round trip is
   the identity, so the *set* of outputs equals the set of inputs (2^n states
   tracked by one linear-size automaton).

It then injects a classic optimizer-style bug — one controlled phase with the
wrong sign — and shows the framework producing a witness state.

Run with:  python examples/qft_verification.py
"""

from repro.benchgen import qft_circuit, qft_roundtrip_benchmark, qft_zero_benchmark
from repro.circuits import Circuit, Gate
from repro.core import check_circuit_equivalence, verify_triple
from repro.ta import all_basis_states_ta


def verify(benchmark, circuit=None) -> None:
    circuit = circuit if circuit is not None else benchmark.circuit
    result = verify_triple(benchmark.precondition, circuit, benchmark.postcondition)
    print(f"{benchmark.name:<22} circuit: {circuit.num_qubits:>2} qubits, "
          f"{circuit.num_gates:>3} gates   "
          f"output TA: {result.output.size_summary():<12} "
          f"verdict: {'HOLDS' if result.holds else 'VIOLATED'}")
    if not result.holds:
        print(f"  witness ({result.witness_kind}): {result.witness}")


def main() -> None:
    print("== property 1: AQFT maps |0..0> to the uniform superposition ==")
    for num_qubits in (2, 3, 4, 5):
        verify(qft_zero_benchmark(num_qubits))

    print("\n== property 2: AQFT followed by its inverse preserves all basis states ==")
    for num_qubits in (2, 3, 4):
        verify(qft_roundtrip_benchmark(num_qubits))

    print("\n== bug injection: one controlled phase with the wrong sign ==")
    num_qubits = 4
    benchmark = qft_roundtrip_benchmark(num_qubits)
    gates = list(benchmark.circuit)
    position = next(index for index, gate in enumerate(gates) if gate.kind == "csdg")
    gates[position] = Gate("cs", gates[position].qubits)
    buggy = Circuit(num_qubits, gates, name="aqft_roundtrip_buggy")
    verify(benchmark, buggy)

    print("\n== the same bug as a non-equivalence check between two circuits ==")
    outcome = check_circuit_equivalence(
        benchmark.circuit, buggy, all_basis_states_ta(num_qubits)
    )
    print(f"output sets differ: {outcome.non_equivalent}")
    print(f"distinguishing output ({outcome.witness_side}): {outcome.witness}")

    print("\n== gate inventory of the 6-qubit AQFT (what the engine has to handle) ==")
    circuit = qft_circuit(6)
    print(circuit.summary())


if __name__ == "__main__":
    main()
