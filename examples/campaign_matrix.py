#!/usr/bin/env python3
"""Run a resumable matrix sweep (families x sizes x modes) through the API.

This is the paper's Section 7.2 evaluation shape as a programmable object: a
``MatrixSpec`` expands into one bug-hunting campaign per (family, size, mode)
cell, cells run cheapest-first, and every cell transition checkpoints into an
on-disk manifest.  The script demonstrates the resume contract directly: it
deliberately kills the sweep partway through, then resumes it and shows that
the already-completed cells are reused rather than re-verified.

Run with:  python examples/campaign_matrix.py [workers]
"""

import sys
import tempfile

from repro.campaign import MatrixScheduler, MatrixSpec, format_cell_table


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    spec = MatrixSpec.from_mapping({
        "families": ["mctoffoli", "ghz", "grover"],
        "sizes": {"mctoffoli": "2-3", "ghz": [3, 4], "grover": [2]},
        "modes": ["hybrid", "permutation"],  # ghz/grover skip permutation
        "mutants": 5,
        "mutations": ["insert", "remove"],
    })
    print(f"sweep {spec.default_campaign_id()}: {len(spec.cells())} cells, "
          f"skipping {len(spec.skipped_combinations())} unsupported combination(s)")

    with tempfile.TemporaryDirectory() as scratch:
        def scheduler() -> MatrixScheduler:
            return MatrixScheduler(
                spec,
                workers=workers,
                report_dir=f"{scratch}/reports",
                manifest_dir=f"{scratch}/manifests",
                cache_dir=f"{scratch}/cache",
            )

        # Simulate a sweep dying partway: stop after the first two cells by
        # raising out of the progress callback (a Ctrl-C behaves the same).
        seen = []

        def die_early(message: str) -> None:
            if message.startswith("[3/"):
                raise KeyboardInterrupt
            seen.append(message)

        try:
            scheduler().run(progress=die_early)
        except KeyboardInterrupt:
            print(f"interrupted after {len(seen)} cell(s) — manifest has them banked")

        # Resume: completed cells come back from the manifest, the rest run.
        result = scheduler().run(resume=True, progress=print)
        print()
        print(format_cell_table(result.rows, result.totals))
        print(f"\nreused {result.reused_cells} cell(s); "
              f"roll-up written to {result.summary_path}")


if __name__ == "__main__":
    main()
