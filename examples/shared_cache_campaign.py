#!/usr/bin/env python3
"""Two sequential campaigns sharing one cross-process automaton store.

The second cache tier behind the engine's per-process gate memo is a
content-addressed on-disk store (``repro.ta.store``): every reduced gate
application a worker computes is published under a renaming-invariant
fingerprint of ``(input automaton, gate, mode)``, and every worker — in this
run or any later one — pointed at the same directory reuses it.

This example runs the *same* Grover campaign twice with the result cache
disabled, so both runs really verify every mutant.  The first run starts from
a cold store and publishes; the second run spawns brand-new worker processes
whose in-memory memos are empty, yet its gate applications come back from the
store — watch the ``store`` counters flip from publishes to hits and the wall
time drop.

Run with:  python examples/shared_cache_campaign.py [num_mutants] [workers]
"""

import sys
import tempfile

from repro.campaign import CampaignConfig, run_campaign


def run_once(label: str, scratch: str, num_mutants: int, workers: int):
    config = CampaignConfig(
        family="grover",
        mutants=num_mutants,
        mutation_kinds=("insert", "remove", "swap-operands"),
        workers=workers,
        report_path=f"{scratch}/{label}.jsonl",
        cache_dir="",                      # force real verification every run...
        store_dir=f"{scratch}/store",      # ...but share gate applications on disk
    )
    summary = run_campaign(config)
    print(f"{label:<5} run: {summary.jobs} jobs in {summary.wall_seconds:5.2f}s  "
          f"store: {summary.store_hits} hit(s), {summary.store_misses} miss(es), "
          f"{summary.store_publishes} publish(es)")
    return summary


def main() -> None:
    num_mutants = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    with tempfile.TemporaryDirectory() as scratch:
        cold = run_once("cold", scratch, num_mutants, workers)
        warm = run_once("warm", scratch, num_mutants, workers)
        assert (warm.holds, warm.violated) == (cold.holds, cold.violated)
        if warm.store_hits:
            print(f"the warm run answered {warm.store_hits} gate application(s) "
                  f"from the store published by the cold run "
                  f"({cold.wall_seconds / max(warm.wall_seconds, 1e-9):.1f}x faster)")
        else:
            print("no store traffic in the warm run — with workers=1 the parent's "
                  "in-process memo answers first; try workers >= 2")


if __name__ == "__main__":
    main()
