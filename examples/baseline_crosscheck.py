#!/usr/bin/env python3
"""Cross-check the TA-based bug hunter against every baseline checker.

Table 3 of the paper compares AutoQ against an equivalence checker based on
path sums (Feynman) and one based on decision diagrams + stimuli (QCEC).  This
example reproduces that comparison in miniature on two injected bugs:

* a *Clifford* bug (an extra CZ) — visible to the stabilizer tableau, the
  path-sum reducer, the TA-based check and random stimuli;
* a *phase-only* bug on a non-Clifford, measurement-free reversible circuit
  (T replaced by Tdg) — the stabilizer baseline must give up, and random
  basis stimuli cannot see it because every basis input produces a basis
  output that differs only by a global phase; the path-sum reducer and the
  TA-based output-set check still find it (the pattern behind the QCEC false
  "equivalent" verdicts in Table 3).

Run with:  python examples/baseline_crosscheck.py
"""

from repro.baselines import (
    PathSumChecker,
    RandomStimuliChecker,
    StabilizerChecker,
    check_unitary_equivalence,
)
from repro.benchgen import ghz_circuit
from repro.circuits import Circuit
from repro.core import check_circuit_equivalence
from repro.ta import all_basis_states_ta


def report(name: str, reference: Circuit, candidate: Circuit) -> None:
    print(f"\n=== {name} ===")
    print(f"reference: {reference.num_gates} gates, candidate: {candidate.num_gates} gates")

    outcome = check_circuit_equivalence(
        reference, candidate, all_basis_states_ta(reference.num_qubits)
    )
    print(f"TA output-set check:  {'DIFFERENT' if outcome.non_equivalent else 'same outputs'}"
          + (f"  witness: {outcome.witness}" if outcome.non_equivalent else ""))

    pathsum = PathSumChecker().check_equivalence(reference, candidate)
    print(f"path-sum (Feynman):   {pathsum.verdict}")

    stabilizer = StabilizerChecker().check_equivalence(reference, candidate)
    print(f"stabilizer (CHP):     {stabilizer.verdict.value}  ({stabilizer.reason})")

    stimuli = RandomStimuliChecker(num_stimuli=8, seed=1).check_equivalence(reference, candidate)
    print(f"random stimuli:       {stimuli.verdict}")

    unitary = check_unitary_equivalence(reference, candidate)
    print(f"brute-force unitary:  {'equal' if unitary.equivalent else 'not equal'} (ground truth)")


def main() -> None:
    # --- Clifford bug: an extra CZ slipped into a GHZ-preparation circuit ----
    ghz = ghz_circuit(4)
    clifford_bug = ghz.copy(name="ghz_buggy").add("cz", 1, 3)
    report("Clifford bug: extra CZ in GHZ preparation", ghz, clifford_bug)

    # --- phase-only bug in a reversible (Hadamard-free) circuit --------------
    # Every basis input is mapped to a basis output, so a wrong T phase shows
    # up only as a global phase of that output and basis stimuli cannot see it.
    reference = (
        Circuit(3, name="phase_ref")
        .add("cx", 0, 1)
        .add("ccx", 0, 1, 2)
        .add("t", 2)
        .add("cx", 1, 2)
        .add("t", 0)
    )
    buggy_gates = [
        gate if not (gate.kind == "t" and gate.qubits == (2,)) else gate.dagger()
        for gate in reference
    ]
    candidate = Circuit(3, buggy_gates, name="phase_buggy")
    report("Phase-only bug: T replaced by Tdg in a reversible circuit", reference, candidate)

    print("\nSummary: the TA-based output-set check catches both bugs; the stabilizer")
    print("baseline only handles the Clifford fragment, and basis stimuli miss the")
    print("phase-only difference - the same failure pattern Table 3 shows for the")
    print("stimuli-based checker on csum_mux_9 and friends.")


if __name__ == "__main__":
    main()
