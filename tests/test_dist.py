"""Distributed campaign fabric units (``repro.dist`` + store backends).

Covers the lease queue's coordination primitives in-process — atomic claims
with fencing tokens, heartbeat renewal, stale-lease stealing, idempotent
first-writer-wins completion — plus the pluggable store backends (local
sharded directory vs. HTTP against a live daemon), the per-client retry
jitter derivation, and the in-process plan → join → merge workflow.  The
cross-*process* guarantees (two joined schedulers, SIGKILLed joiner) live in
``tests/test_chaos_campaign.py``.
"""

import json
import os
import socket
import time

import pytest

from repro.api.client import ServiceClient
from repro.api import SessionConfig
from repro.campaign import JoinRunResult, ManifestError, MatrixScheduler, MatrixSpec
from repro.dist import JobQueue, queue_dir_for, result_fingerprint
from repro.dist.queue import LEASE_TTL_ENV, QueueLease, default_lease_ttl
from repro.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    install_fault_plan,
    install_injector,
)
from repro.service import ServiceConfig, ServiceServer
from repro.ta.store import AutomatonStore
from repro.ta.store_backend import (
    HTTPStoreBackend,
    LocalDirectoryBackend,
    backend_for,
    is_remote_location,
)


@pytest.fixture(autouse=True)
def _no_armed_plan():
    install_injector(None)
    yield
    install_injector(None)


def _queue(tmp_path, **kwargs) -> JobQueue:
    return JobQueue(str(tmp_path), "camp", **kwargs)


def _summary(holds: int = 3, violated: int = 1) -> dict:
    return {"jobs": holds + violated, "holds": holds, "violated": violated,
            "unsupported": 0, "errors": 0, "reference_violated": False,
            "wall_seconds": 0.5}


def _foreign_live_lease() -> dict:
    """A lease no local liveness probe can invalidate: other host, fresh."""
    return {"pid": 4242, "host": "elsewhere.example", "heartbeat": time.time()}


def _write_claim(queue: JobQueue, cell_id: str, token: int, lease) -> str:
    path = os.path.join(queue.claim_dir, f"{cell_id}.t{token}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"campaign_id": queue.campaign_id, "cell_id": cell_id,
                   "token": token, "lease": lease}, handle)
    return path


class TestClaims:
    def test_first_claim_takes_token_one(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.claim("cell-a")
        assert lease is not None
        assert lease.token == 1 and not lease.stolen
        assert os.path.exists(lease.path)
        assert queue.counters["cells_claimed"] == 1
        assert queue.counters["cells_stolen"] == 0

    def test_cell_held_by_a_live_foreign_worker_is_unavailable(self, tmp_path):
        queue = _queue(tmp_path)
        _write_claim(queue, "cell-a", 1, _foreign_live_lease())
        assert queue.claim("cell-a") is None
        assert queue.counters["cells_claimed"] == 0

    def test_stale_lease_is_stolen_at_the_next_token(self, tmp_path):
        queue = _queue(tmp_path)
        dead = {"pid": 4242, "host": "elsewhere.example",
                "heartbeat": time.time() - 10_000.0}
        old_path = _write_claim(queue, "cell-a", 1, dead)
        lease = queue.claim("cell-a")
        assert lease is not None
        assert lease.token == 2 and lease.stolen
        assert queue.counters["cells_stolen"] == 1
        assert queue.counters["cells_requeued"] == 1
        # the superseded generation was cleaned up
        assert not os.path.exists(old_path)

    def test_same_process_reclaim_is_not_a_steal(self, tmp_path):
        # lease_is_stale treats our own pid as stale (a same-process resume
        # reclaims its own cells), but that is a re-queue, not a steal
        queue = _queue(tmp_path)
        first = queue.claim("cell-a")
        second = queue.claim("cell-a")
        assert second is not None
        assert second.token == first.token + 1
        assert not second.stolen
        assert queue.counters["cells_requeued"] == 1
        assert queue.counters["cells_stolen"] == 0

    def test_losing_the_creation_race_returns_none(self, tmp_path, monkeypatch):
        queue = _queue(tmp_path)
        # freeze the pre-claim snapshot at "unclaimed", then let another
        # worker win the O_EXCL race for token 1 before we create it
        monkeypatch.setattr(queue, "current_claim", lambda cell_id: (0, None))
        _write_claim(queue, "cell-a", 1, _foreign_live_lease())
        assert queue.claim("cell-a") is None
        assert queue.counters["cells_claimed"] == 0

    def test_completed_cell_is_never_claimable(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.claim("cell-a")
        assert queue.complete(lease, _summary()) == "accepted"
        assert queue.claim("cell-a") is None

    def test_claim_site_faults_are_retried(self, tmp_path):
        install_fault_plan(FaultPlan(seed=0, sites=(
            FaultSpec(site="queue.claim", kind="raise", every=1, limit=1),
        )))
        retries = []
        retry = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0,
                            sleep=lambda seconds: retries.append(seconds))
        queue = _queue(tmp_path, retry=retry)
        lease = queue.claim("cell-a")
        assert lease is not None and lease.token == 1

    def test_claim_site_fault_exhaustion_yields_none(self, tmp_path):
        install_fault_plan(FaultPlan(seed=0, sites=(
            FaultSpec(site="queue.claim", kind="raise", every=1),
        )))
        queue = _queue(tmp_path,
                       retry=RetryPolicy(attempts=2, base_delay=0.0,
                                         max_delay=0.0, sleep=lambda _s: None))
        assert queue.claim("cell-a") is None


class TestRenewal:
    def test_renew_refreshes_the_heartbeat_in_place(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.claim("cell-a")
        before = queue.current_claim("cell-a")[1]["heartbeat"]
        time.sleep(0.01)
        assert queue.renew(lease) is True
        after = queue.current_claim("cell-a")[1]["heartbeat"]
        assert after > before
        assert lease.renewals == 1
        assert queue.counters["lease_renewals"] == 1

    def test_renew_detects_deposition_by_a_higher_token(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.claim("cell-a")
        _write_claim(queue, "cell-a", lease.token + 1, _foreign_live_lease())
        assert queue.renew(lease) is False
        assert lease.renewals == 0


class TestCompletion:
    def test_first_writer_wins_and_duplicates_are_discarded(self, tmp_path):
        queue = _queue(tmp_path)
        winner = queue.claim("cell-a")
        loser = QueueLease(cell_id="cell-a", token=winner.token + 1,
                           path=os.path.join(queue.claim_dir, "cell-a.t2.json"))
        assert queue.complete(winner, _summary()) == "accepted"
        assert queue.complete(loser, _summary()) == "duplicate"
        record = queue.result("cell-a")
        assert record["token"] == winner.token
        assert queue.counters["completions"] == 1
        assert queue.counters["duplicates"] == 1
        assert queue.counters["conflicts"] == 0

    def test_disagreeing_completion_counts_as_a_conflict(self, tmp_path):
        queue = _queue(tmp_path)
        winner = queue.claim("cell-a")
        queue.complete(winner, _summary(holds=3, violated=1))
        rogue = QueueLease(cell_id="cell-a", token=9,
                           path=os.path.join(queue.claim_dir, "cell-a.t9.json"))
        assert queue.complete(rogue, _summary(holds=2, violated=2)) == "conflict"
        assert queue.counters["conflicts"] == 1
        # first writer still owns the published record
        assert result_fingerprint(queue.result("cell-a")["summary"]) == \
            result_fingerprint(_summary(holds=3, violated=1))

    def test_completion_drops_the_cells_claim_files(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.claim("cell-a")
        queue.complete(lease, _summary())
        assert queue._claim_files("cell-a") == []

    def test_fingerprint_ignores_timings_and_worker_counters(self):
        one = _summary()
        two = dict(_summary(), wall_seconds=99.0, store_hits=7,
                   cells_claimed=3)
        assert result_fingerprint(one) == result_fingerprint(two)
        assert result_fingerprint(one) != result_fingerprint(
            dict(one, violated=one["violated"] + 1))

    def test_garbled_result_file_is_deleted_not_trusted(self, tmp_path):
        queue = _queue(tmp_path)
        path = queue._result_path("cell-a")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert queue.result("cell-a") is None
        assert not os.path.exists(path)


class TestQueueInventory:
    def test_pending_cells_skips_done_and_live_held(self, tmp_path):
        queue = _queue(tmp_path)
        done = queue.claim("cell-done")
        queue.complete(done, _summary())
        _write_claim(queue, "cell-held", 1, _foreign_live_lease())
        dead = {"pid": 4242, "host": "elsewhere.example",
                "heartbeat": time.time() - 10_000.0}
        _write_claim(queue, "cell-stale", 1, dead)
        cells = ["cell-done", "cell-held", "cell-stale", "cell-new"]
        assert queue.pending_cells(cells) == ["cell-stale", "cell-new"]

    def test_reset_drops_claims_and_results(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.claim("cell-a")
        queue.complete(lease, _summary())
        queue.claim("cell-b")
        queue.reset()
        assert queue.completed_cell_ids() == []
        assert queue._claim_files("cell-b") == []

    def test_queue_dir_lives_next_to_the_manifest(self, tmp_path):
        assert queue_dir_for("/m", "abc") == os.path.join("/m", "abc.queue")
        queue = _queue(tmp_path)
        assert queue.directory == os.path.join(str(tmp_path), "camp.queue")

    def test_lease_ttl_env_override(self, monkeypatch):
        monkeypatch.delenv(LEASE_TTL_ENV, raising=False)
        base = default_lease_ttl()
        monkeypatch.setenv(LEASE_TTL_ENV, "2.5")
        assert default_lease_ttl() == 2.5
        monkeypatch.setenv(LEASE_TTL_ENV, "not-a-number")
        assert default_lease_ttl() == base
        monkeypatch.setenv(LEASE_TTL_ENV, "-1")
        assert default_lease_ttl() == base


class TestStoreBackends:
    def test_backend_selection_by_location(self, tmp_path):
        assert not is_remote_location(str(tmp_path))
        assert is_remote_location("http://127.0.0.1:1")
        assert is_remote_location("https://store.example")
        assert isinstance(backend_for(str(tmp_path)), LocalDirectoryBackend)
        assert isinstance(backend_for("http://127.0.0.1:1"), HTTPStoreBackend)

    def test_local_backend_roundtrip_and_miss(self, tmp_path):
        backend = LocalDirectoryBackend(str(tmp_path))
        key = "ab" + "0" * 62
        assert backend.read_text(key) is None
        os.makedirs(os.path.dirname(backend.path_for(key)), exist_ok=True)
        backend.write_text(key, '{"x": 1}')
        assert backend.read_text(key) == '{"x": 1}'
        # sharded layout: first two hex chars pick the shard directory
        assert os.path.basename(os.path.dirname(backend.path_for(key))) == "ab"

    def test_http_backend_roundtrip_against_a_live_daemon(self, tmp_path):
        config = ServiceConfig(port=0, workers=1, session=SessionConfig(
            cache_dir="", store_dir=str(tmp_path / "served-store")))
        server = ServiceServer(config).start()
        try:
            backend = HTTPStoreBackend(server.url)
            key = "c" * 64
            assert backend.read_text(key) is None  # 404 is a miss, not a fault
            backend.write_text(key, '{"entry": true}')
            assert backend.read_text(key) == '{"entry": true}'
            with pytest.raises(OSError):
                backend.read_text("not-a-digest")  # 400 is a fault
            with pytest.raises(OSError):
                backend.write_text("d" * 64, '"not an object"')
        finally:
            server.stop()

    def test_remote_automaton_store_counts_backend_hits(self, tmp_path):
        config = ServiceConfig(port=0, workers=1, session=SessionConfig(
            cache_dir="", store_dir=str(tmp_path / "served-store")))
        server = ServiceServer(config).start()
        try:
            from repro.ta import basis_state_ta

            remote = AutomatonStore(server.url)
            assert remote.backend.remote
            key = "e" * 64
            assert remote.get(key) is None
            automaton = basis_state_ta(2, "01")
            remote.put(key, automaton)
            # a different worker (fresh store instance, cold memory tier)
            # must see the published entry through the shared daemon
            other = AutomatonStore(server.url)
            fetched = other.get(key)
            assert fetched is not None
            assert fetched.automaton.structure_key() == automaton.structure_key()
            counters = other.counter_snapshot()
            assert counters["backend_hits"] == 1
            assert counters["hits"] == 1
            assert remote.counter_snapshot()["misses"] == 1
        finally:
            server.stop()


class TestClientJitter:
    def test_default_clients_derive_distinct_backoff_seeds(self):
        first = ServiceClient("http://127.0.0.1:1")
        second = ServiceClient("http://127.0.0.1:1")
        assert first.retry.seed != second.retry.seed
        # the rest of the policy is still the patient client profile
        assert first.retry.attempts == second.retry.attempts

    def test_explicit_retry_policy_is_preserved_verbatim(self):
        policy = RetryPolicy(attempts=1, seed=0)
        client = ServiceClient("http://127.0.0.1:1", retry=policy)
        assert client.retry is policy


def _spec() -> MatrixSpec:
    return MatrixSpec.from_mapping(
        {"families": ["bv"], "sizes": "2-3", "mutants": 2})


def _scheduler(tmp_path, **overrides) -> MatrixScheduler:
    settings = dict(
        workers=1,
        report_dir=str(tmp_path / "reports"),
        manifest_dir=str(tmp_path / "manifests"),
        cache_dir=str(tmp_path / "cache"),
        campaign_id="fabric-test",
    )
    settings.update(overrides)
    return MatrixScheduler(_spec(), **settings)


class TestJoinWorkflow:
    def test_plan_join_then_coordinator_merge(self, tmp_path):
        coordinator = _scheduler(tmp_path)
        coordinator.plan()

        joiner = MatrixScheduler.join(
            "fabric-test", report_dir=str(tmp_path / "join-reports"),
            manifest_dir=str(tmp_path / "manifests"),
            cache_dir=str(tmp_path / "cache"))
        outcome = joiner.run_join()
        assert isinstance(outcome, JoinRunResult)
        assert outcome.cells_executed == 2
        assert outcome.counters["completions"] == 2
        assert outcome.counters["conflicts"] == 0
        assert outcome.trustworthy
        # fabric counters are stamped into each published summary
        assert all(row["cells_claimed"] == 1 for row in outcome.rows)
        # the joiner wrote its own per-cell JSONL reports
        for row in outcome.rows:
            assert os.path.exists(row["report_path"])

        result = coordinator.run(resume=True)
        assert [row["cell"] for row in result.rows] == \
            [row["cell"] for row in sorted(outcome.rows, key=lambda r: r["cell"])]
        assert result.totals["jobs"] == outcome.totals["jobs"]
        assert result.trustworthy
        with open(result.summary_path, "r", encoding="utf-8") as handle:
            summary = json.load(handle)
        assert summary["merged_cells"] == 2

    def test_second_joiner_finds_nothing_claimable(self, tmp_path):
        coordinator = _scheduler(tmp_path)
        coordinator.plan()
        kwargs = dict(report_dir=str(tmp_path / "join-reports"),
                      manifest_dir=str(tmp_path / "manifests"),
                      cache_dir=str(tmp_path / "cache"))
        first = MatrixScheduler.join("fabric-test", **kwargs).run_join()
        second = MatrixScheduler.join("fabric-test", **kwargs).run_join()
        assert first.cells_executed == 2
        assert second.cells_executed == 0
        assert second.counters["cells_claimed"] == 0

    def test_join_requires_an_existing_manifest(self, tmp_path):
        with pytest.raises(ManifestError):
            MatrixScheduler.join("no-such-campaign",
                                 manifest_dir=str(tmp_path / "manifests"))

    def test_solo_run_matches_fabric_run_verdicts(self, tmp_path):
        solo = _scheduler(tmp_path, campaign_id="solo",
                          report_dir=str(tmp_path / "solo-reports")).run()
        fabric = _scheduler(tmp_path)
        fabric.plan()
        MatrixScheduler.join(
            "fabric-test", report_dir=str(tmp_path / "join-reports"),
            manifest_dir=str(tmp_path / "manifests"),
            cache_dir=str(tmp_path / "cache")).run_join()
        merged = fabric.run(resume=True)
        verdict = lambda rows: [(r["cell"], r["jobs"], r["holds"], r["violated"],
                                 r["unsupported"], r["errors"]) for r in rows]
        assert verdict(merged.rows) == verdict(solo.rows)
