"""Tests for the exact gate matrices (Appendix A of the paper)."""

import numpy as np
import pytest

from repro.algebraic import (
    GATE_MATRICES,
    gate_matrix,
    identity_matrix,
    is_unitary,
    kron,
    matmul,
    matrix_to_complex,
    matvec,
)
from repro.algebraic.matrices import conjugate_transpose
from repro.algebraic import ONE, ZERO


class TestGateMatrices:
    @pytest.mark.parametrize("name", sorted(GATE_MATRICES))
    def test_every_gate_matrix_is_unitary(self, name):
        assert is_unitary(gate_matrix(name)), f"{name} is not unitary"

    def test_lookup_is_case_insensitive(self):
        assert gate_matrix("x") == gate_matrix("X")

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gate_matrix("nonexistent")

    def test_hadamard_matches_numpy(self):
        h = matrix_to_complex(gate_matrix("H"))
        expected = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        assert np.allclose(h, expected)

    def test_cnot_permutes_basis(self):
        cx = matrix_to_complex(gate_matrix("CX"))
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        assert np.allclose(cx, expected)

    def test_t_gate_phase(self):
        t = matrix_to_complex(gate_matrix("T"))
        assert t[1, 1] == pytest.approx(np.exp(1j * np.pi / 4))

    def test_s_is_t_squared(self):
        assert matmul(gate_matrix("T"), gate_matrix("T")) == gate_matrix("S")

    def test_sdg_is_s_dagger(self):
        assert conjugate_transpose(gate_matrix("S")) == gate_matrix("SDG")
        assert conjugate_transpose(gate_matrix("T")) == gate_matrix("TDG")

    def test_toffoli_flips_only_the_last_two_rows(self):
        ccx = matrix_to_complex(gate_matrix("CCX"))
        expected = np.eye(8, dtype=complex)
        expected[[6, 7]] = expected[[7, 6]]
        assert np.allclose(ccx, expected)

    def test_fredkin_swaps_targets_when_control_set(self):
        fredkin = matrix_to_complex(gate_matrix("FREDKIN"))
        expected = np.eye(8, dtype=complex)
        expected[[5, 6]] = expected[[6, 5]]
        assert np.allclose(fredkin, expected)


class TestMatrixAlgebra:
    def test_identity_matrix(self):
        identity = identity_matrix(4)
        assert len(identity) == 4
        assert identity[2][2] == ONE
        assert identity[0][3] == ZERO

    def test_matmul_with_identity(self):
        x = gate_matrix("X")
        assert matmul(x, identity_matrix(2)) == x
        assert matmul(identity_matrix(2), x) == x

    def test_matvec(self):
        x = gate_matrix("X")
        assert matvec(x, (ONE, ZERO)) == (ZERO, ONE)

    def test_kron_dimensions_and_values(self):
        product = kron(gate_matrix("X"), identity_matrix(2))
        dense = matrix_to_complex(product)
        expected = np.kron(np.array([[0, 1], [1, 0]]), np.eye(2))
        assert dense.shape == (4, 4)
        assert np.allclose(dense, expected)

    def test_kron_matches_numpy_for_h_and_z(self):
        product = matrix_to_complex(kron(gate_matrix("H"), gate_matrix("Z")))
        expected = np.kron(
            matrix_to_complex(gate_matrix("H")), matrix_to_complex(gate_matrix("Z"))
        )
        assert np.allclose(product, expected)

    def test_x_squared_is_identity(self):
        assert matmul(gate_matrix("X"), gate_matrix("X")) == identity_matrix(2)

    def test_rx_ry_are_pi_over_2_rotations(self):
        rx = matrix_to_complex(gate_matrix("RX"))
        expected_rx = np.array([[1, -1j], [-1j, 1]], dtype=complex) / np.sqrt(2)
        assert np.allclose(rx, expected_rx)
        ry = matrix_to_complex(gate_matrix("RY"))
        expected_ry = np.array([[1, -1], [1, 1]], dtype=complex) / np.sqrt(2)
        assert np.allclose(ry, expected_ry)
