"""Tests for the parallel bug-hunting campaign subsystem."""

import json
import os

import pytest

from repro.campaign import (
    Campaign,
    CampaignConfig,
    CampaignReportWriter,
    MutationPlan,
    ResultCache,
    fingerprint_automaton,
    fingerprint_circuit,
    read_report,
    run_campaign,
    summarise_records,
)
from repro.campaign.plan import MUTATION_KINDS
from repro.campaign.report import REPORT_FIELDS
from repro.campaign.runner import execute_job
from repro.benchgen import build_family
from repro.circuits import Circuit
from repro.ta import basis_state_ta


def _config(tmp_path, **overrides) -> CampaignConfig:
    settings = dict(
        family="grover",
        mutants=4,
        mutation_kinds=("insert", "remove"),
        workers=1,
        report_path=str(tmp_path / "report.jsonl"),
        cache_dir=str(tmp_path / "cache"),
    )
    settings.update(overrides)
    return CampaignConfig(**settings)


class TestFingerprints:
    def test_circuit_fingerprint_ignores_the_name(self):
        first = Circuit(2, name="a").add("h", 0).add("cx", 0, 1)
        second = Circuit(2, name="b").add("h", 0).add("cx", 0, 1)
        assert fingerprint_circuit(first) == fingerprint_circuit(second)

    def test_circuit_fingerprint_sees_gate_changes(self):
        first = Circuit(2).add("h", 0)
        second = Circuit(2).add("h", 1)
        assert fingerprint_circuit(first) != fingerprint_circuit(second)

    def test_automaton_fingerprint_is_stable_under_state_renaming(self):
        automaton = basis_state_ta(3, "010")
        assert fingerprint_automaton(automaton) == fingerprint_automaton(automaton.shifted(40))

    def test_automaton_fingerprint_distinguishes_languages(self):
        assert fingerprint_automaton(basis_state_ta(2, "00")) != fingerprint_automaton(
            basis_state_ta(2, "01")
        )


class TestMutationPlan:
    def test_jobs_are_deterministic(self):
        benchmark = build_family("grover")
        first = MutationPlan(num_mutants=6, kinds=MUTATION_KINDS, base_seed=3)
        second = MutationPlan(num_mutants=6, kinds=MUTATION_KINDS, base_seed=3)
        fingerprints = lambda plan: [job.circuit_fingerprint for job in plan.jobs(benchmark, "hybrid")]
        assert fingerprints(first) == fingerprints(second)

    def test_reference_job_is_included_once(self):
        benchmark = build_family("grover")
        jobs = MutationPlan(num_mutants=3).jobs(benchmark, "hybrid")
        kinds = [job.mutation_kind for job in jobs]
        assert kinds.count("reference") == 1
        assert len(jobs) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MutationPlan(num_mutants=1, kinds=("teleport",))

    def test_inapplicable_mutation_falls_back_to_insert(self):
        single_qubit = Circuit(1).add("h", 0)
        plan = MutationPlan(num_mutants=2, kinds=("swap-operands",))
        kinds = [kind for _i, kind, _s, _m, _d in plan.mutants(single_qubit)]
        assert kinds == ["insert", "insert"]


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = ResultCache.key("c", "p", "hybrid")
        cache.put(key, {"verdict": "holds", "postcondition_fingerprint": "q"})
        assert cache.get(key, postcondition_fingerprint="q")["verdict"] == "holds"
        assert len(cache) == 1

    def test_postcondition_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = ResultCache.key("c", "p", "hybrid")
        cache.put(key, {"verdict": "holds", "postcondition_fingerprint": "q"})
        assert cache.get(key, postcondition_fingerprint="other") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = ResultCache.key("c", "p", "hybrid")
        with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(ResultCache.key("c", "p", "hybrid"), {})
        assert cache.clear() == 1
        assert len(cache) == 0


class TestReport:
    def test_writer_fills_missing_fields(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        with CampaignReportWriter(path) as writer:
            writer.write({"job_id": "x", "verdict": "holds"})
        (record,) = read_report(path)
        assert set(record) == set(REPORT_FIELDS)
        assert record["witness"] is None

    def test_summarise_records(self):
        records = [
            {"verdict": "holds", "cached": True, "statistics": {"analysis_seconds": 1.0}},
            {"verdict": "violated", "cached": False, "statistics": {"analysis_seconds": 2.0}},
            {"verdict": "error", "cached": False, "statistics": None},
        ]
        summary = summarise_records(records, wall_seconds=5.0)
        assert summary["jobs"] == 3
        assert summary["holds"] == 1
        assert summary["violated"] == 1
        assert summary["errors"] == 1
        assert summary["cache_hits"] == 1
        # cached records carry the original run's timings; only fresh work counts
        assert summary["analysis_seconds"] == pytest.approx(2.0)
        assert summary["wall_seconds"] == 5.0


class TestExecuteJob:
    def test_broken_job_yields_an_error_record(self):
        import dataclasses

        benchmark = build_family("grover")
        (job,) = MutationPlan(num_mutants=0).jobs(benchmark, "hybrid")
        broken = dataclasses.replace(job, circuit_qasm="this is not qasm")
        record = execute_job(broken)
        assert record["verdict"] == "error"
        assert record["error"]


class TestCampaignRunner:
    def test_serial_campaign_end_to_end(self, tmp_path):
        summary = run_campaign(_config(tmp_path))
        assert summary.jobs == 5
        assert summary.errors == 0
        assert summary.cache_hits == 0
        assert summary.holds >= 1  # the reference triple holds
        records = read_report(str(tmp_path / "report.jsonl"))
        assert len(records) == 5
        assert all(set(record) == set(REPORT_FIELDS) for record in records)

    def test_second_run_hits_the_cache(self, tmp_path):
        run_campaign(_config(tmp_path))
        summary = run_campaign(_config(tmp_path))
        assert summary.cache_hits == summary.jobs == 5

    def test_parallel_matches_serial_verdicts(self, tmp_path):
        serial = run_campaign(_config(tmp_path, cache_dir="", report_path=str(tmp_path / "s.jsonl")))
        parallel = run_campaign(
            _config(tmp_path, cache_dir="", workers=2, report_path=str(tmp_path / "p.jsonl"))
        )
        verdict = lambda path: [(r["job_id"], r["verdict"]) for r in read_report(path)]
        assert verdict(str(tmp_path / "s.jsonl")) == verdict(str(tmp_path / "p.jsonl"))
        assert serial.jobs == parallel.jobs

    def test_cache_hit_from_another_seed_keeps_this_jobs_identity(self, tmp_path):
        # gate removal under different seeds often reproduces the same circuit,
        # so a cache hit can come from a different job of a previous campaign;
        # the report must still carry the *current* plan's identities
        base = dict(mutation_kinds=("remove",), mutants=8)
        run_campaign(_config(tmp_path, **base, seed=0))
        second = _config(tmp_path, **base, seed=100, report_path=str(tmp_path / "second.jsonl"))
        summary = run_campaign(second)
        assert summary.cache_hits > 0
        records = read_report(str(tmp_path / "second.jsonl"))
        expected = [job.job_id for job in Campaign(second).build_jobs()]
        assert [record["job_id"] for record in records] == expected
        for record in records:
            if record["mutation_kind"] != "reference":
                assert record["seed"] is not None and record["seed"] >= 100

    def test_identical_mutants_are_verified_once_per_run(self, tmp_path):
        # colliding mutation seeds produce identical circuits; only the first
        # occurrence of each (circuit, precondition, mode) key does real work
        config = _config(
            tmp_path, mutants=12, mutation_kinds=("remove",), cache_dir="",
            include_reference=False,
        )
        jobs = Campaign(config).build_jobs()
        unique_keys = {job.circuit_fingerprint for job in jobs}
        assert len(unique_keys) < len(jobs)  # the scenario actually collides
        run_campaign(config)
        records = read_report(config.report_path)
        assert [r["job_id"] for r in records] == [job.job_id for job in jobs]
        deduplicated = [r for r in records if r["deduplicated"]]
        assert len(deduplicated) == len(jobs) - len(unique_keys)
        by_fingerprint = {}
        for record in records:
            verdict = by_fingerprint.setdefault(record["circuit_fingerprint"], record["verdict"])
            assert record["verdict"] == verdict

    def test_broken_specification_flags_the_reference(self, tmp_path):
        campaign = Campaign(_config(tmp_path, cache_dir="", mutants=0))
        qubits = campaign.benchmark.num_qubits
        campaign.benchmark.postcondition = basis_state_ta(qubits, (1,) * qubits)
        summary = campaign.run()
        assert summary.reference_violated
        assert summary.holds == 0

    def test_intact_specification_does_not_flag_the_reference(self, tmp_path):
        summary = run_campaign(_config(tmp_path, cache_dir="", mutants=0))
        assert not summary.reference_violated

    def test_unsupported_reference_is_not_flagged_as_violated(self, tmp_path):
        # GHZ's H gate has no permutation encoding: the reference verdict is
        # "unsupported", which is neither an error nor a spec violation
        summary = run_campaign(
            _config(tmp_path, family="ghz", mode="permutation", mutants=0, cache_dir="")
        )
        assert summary.unsupported == 1
        assert summary.errors == 0
        assert not summary.reference_violated

    def test_unknown_family_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign(_config(tmp_path, family="grover2"))

    def test_disabled_cache_never_hits(self, tmp_path):
        config = _config(tmp_path, cache_dir="")
        run_campaign(config)
        summary = run_campaign(config)
        assert summary.cache_hits == 0

    def test_build_jobs_matches_mutant_count(self, tmp_path):
        campaign = Campaign(_config(tmp_path, mutants=7, include_reference=False))
        assert len(campaign.build_jobs()) == 7

    def test_invalid_worker_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _config(tmp_path, workers=0)

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _config(tmp_path, mode="turbo")


class TestCampaignStore:
    """The cross-process automaton store wired through the campaign runner."""

    def test_store_dir_resolution(self, tmp_path):
        from repro.campaign import resolve_store_dir
        from repro.ta import default_store_dir

        assert resolve_store_dir("", None) is None          # --no-cache: both off
        assert resolve_store_dir("", "") is None            # --no-store too
        assert resolve_store_dir("", str(tmp_path)) == str(tmp_path)  # explicit wins
        assert resolve_store_dir(str(tmp_path), None) == os.path.join(str(tmp_path), "store")
        assert resolve_store_dir(None, None) == default_store_dir()

    def test_second_run_reuses_the_store_across_simulated_processes(self, tmp_path):
        from repro.core.engine import clear_gate_cache
        from repro.ta.automaton import clear_intern_tables, clear_reduce_cache

        store_dir = str(tmp_path / "store")
        # start from cold per-process caches: earlier tests sweep the same
        # family, and process-memo hits would bypass (and under-fill) the store
        clear_gate_cache()
        clear_reduce_cache()
        clear_intern_tables()
        # result cache off so every job actually verifies; store on explicitly
        first = run_campaign(_config(tmp_path, cache_dir="", store_dir=store_dir))
        assert first.store_publishes > 0
        assert first.store_hits + first.store_misses > 0

        # simulate fresh worker processes: drop every per-process cache
        clear_gate_cache()
        clear_reduce_cache()
        clear_intern_tables()
        warm = run_campaign(_config(tmp_path, cache_dir="", store_dir=store_dir,
                                    report_path=str(tmp_path / "warm.jsonl")))
        assert warm.store_hits > 0
        assert warm.store_misses == 0
        assert warm.store_publishes == 0
        assert (warm.holds, warm.violated, warm.errors) == (
            first.holds, first.violated, first.errors
        )

    def test_store_counters_flow_into_jsonl_records(self, tmp_path):
        from repro.core.engine import clear_gate_cache

        store_dir = str(tmp_path / "store")
        clear_gate_cache()  # a warm process memo would leave the store untouched
        run_campaign(_config(tmp_path, cache_dir="", store_dir=store_dir))
        records = read_report(str(tmp_path / "report.jsonl"))
        totals = {"store_hits": 0, "store_misses": 0, "store_publishes": 0}
        for record in records:
            statistics = record.get("statistics") or {}
            for key in totals:
                assert key in statistics
                totals[key] += statistics[key]
        assert totals["store_publishes"] > 0

    def test_campaign_restores_the_previous_store(self, tmp_path):
        from repro.core.engine import active_gate_store

        assert active_gate_store() is None
        run_campaign(_config(tmp_path, cache_dir="", store_dir=str(tmp_path / "store")))
        assert active_gate_store() is None

    def test_disabled_store_records_nothing(self, tmp_path):
        summary = run_campaign(_config(tmp_path, cache_dir="", store_dir=""))
        assert summary.store_hits == summary.store_misses == summary.store_publishes == 0
