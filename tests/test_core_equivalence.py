"""Tests for circuit non-equivalence checking and the incremental bug hunter."""

import pytest

from repro.circuits import Circuit, inject_random_gate, random_circuit
from repro.core import IncrementalBugHunter, check_circuit_equivalence
from repro.core.engine import AnalysisMode
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState
from repro.ta import all_basis_states_ta, basis_state_ta


class TestCheckCircuitEquivalence:
    def test_identical_circuits_have_equal_outputs(self):
        circuit = random_circuit(4, num_gates=12, seed=1)
        outcome = check_circuit_equivalence(circuit, circuit.copy(), basis_state_ta(4, "0000"))
        assert not outcome.non_equivalent
        assert outcome.witness is None
        assert not bool(outcome)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_circuit_equivalence(Circuit(2).add("x", 0), Circuit(3).add("x", 0), basis_state_ta(2, "00"))

    def test_detects_extra_x_gate(self):
        reference = Circuit(3).add("h", 0).add("cx", 0, 1)
        buggy = reference.copy().add("x", 2)
        outcome = check_circuit_equivalence(reference, buggy, basis_state_ta(3, "000"))
        assert outcome.non_equivalent
        assert outcome.witness is not None
        assert outcome.witness_side in ("first-only", "second-only")

    def test_witness_is_reachable_in_exactly_one_circuit(self, simulator):
        reference = random_circuit(3, num_gates=9, seed=4)
        buggy, _ = inject_random_gate(reference, seed=10)
        inputs = all_basis_states_ta(3)
        outcome = check_circuit_equivalence(reference, buggy, inputs)
        if outcome.non_equivalent:
            ref_outputs = [simulator.run(reference, s) for s in inputs.enumerate_states()]
            bug_outputs = [simulator.run(buggy, s) for s in inputs.enumerate_states()]
            in_ref = outcome.witness in ref_outputs
            in_bug = outcome.witness in bug_outputs
            assert in_ref != in_bug

    def test_phase_bug_invisible_to_measurement_is_caught(self):
        # a Z on a |+> state changes the state but not the measurement distribution
        reference = Circuit(2).add("h", 0)
        buggy = Circuit(2).add("h", 0).add("z", 0)
        outcome = check_circuit_equivalence(reference, buggy, basis_state_ta(2, "00"))
        assert outcome.non_equivalent

    def test_global_phase_difference_is_reported(self):
        # AutoQ compares state sets exactly, so a global phase does count as different
        reference = Circuit(1).add("x", 0)
        phased = Circuit(1).add("x", 0).add("z", 0).add("x", 0).add("z", 0).add("x", 0)
        outcome = check_circuit_equivalence(reference, phased, basis_state_ta(1, "0"))
        assert outcome.non_equivalent

    def test_timings_are_recorded(self):
        circuit = Circuit(2).add("h", 0)
        outcome = check_circuit_equivalence(circuit, circuit.copy(), basis_state_ta(2, "00"))
        assert outcome.analysis_seconds >= 0
        assert outcome.comparison_seconds >= 0


class TestIncrementalBugHunter:
    def test_finds_injected_bug(self):
        reference = random_circuit(4, num_gates=12, seed=21)
        buggy, _ = inject_random_gate(reference, seed=22)
        hunter = IncrementalBugHunter(seed=0)
        result = hunter.hunt(reference, buggy)
        assert result.bug_found
        assert result.iterations >= 1
        assert result.witness is not None
        assert result.final_input_size >= 1
        assert bool(result)

    def test_identical_circuits_yield_no_bug(self):
        reference = random_circuit(3, num_gates=9, seed=30)
        hunter = IncrementalBugHunter(seed=0, max_iterations=3)
        result = hunter.hunt(reference, reference.copy())
        assert not result.bug_found
        assert result.iterations == 3
        assert not bool(result)

    def test_iteration_budget_is_respected(self):
        reference = random_circuit(3, num_gates=9, seed=31)
        hunter = IncrementalBugHunter(seed=0, max_iterations=2)
        result = hunter.hunt(reference, reference.copy())
        assert result.iterations <= 2

    def test_width_mismatch_rejected(self):
        hunter = IncrementalBugHunter()
        with pytest.raises(ValueError):
            hunter.hunt(Circuit(2).add("x", 0), Circuit(3).add("x", 0))

    def test_initial_basis_can_be_chosen(self):
        reference = Circuit(2).add("cx", 0, 1)
        buggy = Circuit(2).add("cx", 0, 1).add("x", 1)
        hunter = IncrementalBugHunter(seed=0, max_iterations=1)
        result = hunter.hunt(reference, buggy, initial_basis=(1, 0))
        assert result.bug_found
        assert result.iterations == 1

    def test_bug_only_visible_on_non_initial_input_requires_iterations(self):
        # the bug (an extra CZ) only manifests when qubit 0 is |1> and qubit 1 is |1>
        reference = Circuit(2)
        buggy = Circuit(2).add("cz", 0, 1)
        hunter = IncrementalBugHunter(seed=3)
        result = hunter.hunt(reference, buggy, initial_basis=(0, 0))
        assert result.bug_found
        assert result.iterations > 1

    def test_per_iteration_times_recorded(self):
        reference = random_circuit(3, num_gates=6, seed=33)
        buggy, _ = inject_random_gate(reference, seed=34)
        result = IncrementalBugHunter(seed=1).hunt(reference, buggy)
        assert len(result.per_iteration_seconds) == result.iterations

    def test_composition_mode_hunt(self):
        reference = Circuit(2).add("h", 0).add("cx", 0, 1)
        buggy = Circuit(2).add("h", 0).add("cx", 0, 1).add("s", 1)
        result = IncrementalBugHunter(mode=AnalysisMode.COMPOSITION, seed=0).hunt(reference, buggy)
        assert result.bug_found
