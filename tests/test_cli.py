"""Tests for the ``autoq-repro`` command-line interface."""

import json

import pytest

from repro.circuits import Circuit, save_qasm_file, to_qasm
from repro.cli import build_parser, main


@pytest.fixture
def bell_qasm(tmp_path):
    path = tmp_path / "bell.qasm"
    save_qasm_file(Circuit(2).add("h", 0).add("cx", 0, 1), str(path))
    return str(path)


@pytest.fixture
def buggy_bell_qasm(tmp_path):
    path = tmp_path / "bell_buggy.qasm"
    save_qasm_file(Circuit(2).add("h", 0).add("cx", 0, 1).add("z", 1), str(path))
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_arguments(self):
        args = build_parser().parse_args(["verify", "--family", "bv", "--size", "5"])
        assert args.family == "bv"
        assert args.size == 5

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--family", "shor", "--size", "5"])


class TestVerifyCommand:
    def test_bv_verification_succeeds(self, capsys):
        assert main(["verify", "--family", "bv", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "BV(n=4)" in out

    def test_mctoffoli_verification_succeeds(self, capsys):
        assert main(["verify", "--family", "mctoffoli", "--size", "3"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_grover_single_verification(self, capsys):
        assert main(["verify", "--family", "grover-single", "--size", "2"]) == 0
        assert "HOLDS" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulate_default_input(self, bell_qasm, capsys):
        assert main(["simulate", bell_qasm]) == 0
        out = capsys.readouterr().out
        assert "|00>" in out and "|11>" in out

    def test_simulate_custom_input(self, bell_qasm, capsys):
        assert main(["simulate", bell_qasm, "--input", "10"]) == 0
        assert "|11>" in capsys.readouterr().out


class TestEquivalenceCommand:
    def test_equivalent_circuits(self, bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, bell_qasm]) == 0
        assert "coincide" in capsys.readouterr().out

    def test_non_equivalent_circuits(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, buggy_bell_qasm]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out

    def test_single_input_restriction(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, buggy_bell_qasm, "--single-input", "00"]) == 1


class TestBughuntCommand:
    def test_hunt_between_two_files(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["bughunt", bell_qasm, buggy_bell_qasm]) == 1
        out = capsys.readouterr().out
        assert "BUG FOUND" in out

    def test_hunt_with_injected_bug(self, bell_qasm, capsys):
        exit_code = main(["bughunt", bell_qasm, "--inject-seed", "3"])
        out = capsys.readouterr().out
        assert "injected bug" in out
        assert exit_code in (0, 1)

    def test_hunt_without_candidate_is_an_error(self, bell_qasm, capsys):
        assert main(["bughunt", bell_qasm]) == 2

    def test_hunt_identical_circuits(self, bell_qasm, capsys):
        assert main(["bughunt", bell_qasm, bell_qasm, "--max-iterations", "2"]) == 0
        assert "no difference" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_ghz_circuit(self, tmp_path, capsys):
        output = tmp_path / "ghz.qasm"
        assert main(["generate", "--family", "ghz", "--size", "5", str(output)]) == 0
        assert "GHZ(n=5)" in capsys.readouterr().out
        from repro.circuits import load_qasm_file

        circuit = load_qasm_file(str(output))
        assert circuit.num_qubits == 5
        assert circuit.count_kind("cx") == 4

    def test_generate_qft_circuit_round_trips_through_qasm(self, tmp_path):
        output = tmp_path / "qft.qasm"
        assert main(["generate", "--family", "qft-zero", "--size", "4", str(output)]) == 0
        from repro.circuits import load_qasm_file

        circuit = load_qasm_file(str(output))
        assert circuit.count_kind("cs") == 3

    def test_new_families_are_verifiable(self, capsys):
        assert main(["verify", "--family", "ghz", "--size", "4"]) == 0
        assert "HOLDS" in capsys.readouterr().out
        assert main(["verify", "--family", "qft-zero", "--size", "3"]) == 0
        assert "HOLDS" in capsys.readouterr().out


class TestInjectCommand:
    def test_inject_writes_a_mutated_copy(self, bell_qasm, tmp_path, capsys):
        output = tmp_path / "buggy.qasm"
        assert main(["inject", bell_qasm, str(output), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "injected bug" in out
        from repro.circuits import load_qasm_file

        original = load_qasm_file(bell_qasm)
        mutated = load_qasm_file(str(output))
        assert mutated.num_gates == original.num_gates + 1


class TestStatsCommand:
    def test_stats_reports_histogram(self, bell_qasm, capsys):
        assert main(["stats", bell_qasm]) == 0
        out = capsys.readouterr().out
        assert "qubits:   2" in out
        assert "h" in out and "cx" in out
        assert "composition-based encoding" in out


class TestExportTaCommand:
    def test_export_precondition_in_timbuk_format(self, tmp_path, capsys):
        output = tmp_path / "pre.timbuk"
        assert main(["export-ta", "--family", "bv", "--size", "4", str(output)]) == 0
        assert "pre-condition" in capsys.readouterr().out
        from repro.ta.timbuk import load_timbuk

        automaton = load_timbuk(str(output))
        assert automaton.num_qubits == 5  # n data qubits + 1 ancilla

    def test_export_postcondition(self, tmp_path):
        output = tmp_path / "post.timbuk"
        assert main(["export-ta", "--family", "ghz", "--size", "3", "--which", "post", str(output)]) == 0
        from repro.states import QuantumState
        from repro.benchgen import ghz_state
        from repro.ta.timbuk import load_timbuk

        automaton = load_timbuk(str(output))
        assert automaton.accepts(ghz_state(3))
        assert not automaton.accepts(QuantumState.zero_state(3))


class TestCampaignCommand:
    def _argv(self, tmp_path, *extra):
        return [
            "campaign",
            "--family", "grover",
            "--mutants", "5",
            "--report", str(tmp_path / "report.jsonl"),
            "--cache-dir", str(tmp_path / "cache"),
            *extra,
        ]

    def test_campaign_produces_a_jsonl_report(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Grover-Sing" in out
        assert "jobs:      6" in out
        import json

        with open(tmp_path / "report.jsonl") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert len(records) == 6  # reference + 5 mutants
        from repro.campaign.report import REPORT_FIELDS

        for record in records:
            assert set(record) == set(REPORT_FIELDS)
            assert record["verdict"] in ("holds", "violated", "error")
            assert record["statistics"]["gates_total"] > 0

    def test_second_run_hits_the_cache(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "cache:     6 hit(s)" in out

    def test_worker_count_flag_is_honoured(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--workers", "2", "--no-cache")) == 0
        out = capsys.readouterr().out
        assert "2 worker(s)" in out
        assert "jobs:      6" in out

    def test_unknown_mutation_kind_is_an_error(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--mutations", "teleport")) == 2
        assert "error" in capsys.readouterr().err

    def test_skip_reference_flag(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--skip-reference", "--no-cache")) == 0
        assert "jobs:      5" in capsys.readouterr().out

    @staticmethod
    def _fake_campaign(monkeypatch, **summary_overrides):
        """Stub out the campaign machinery behind Session.run(CampaignProblem)."""
        import repro.api.session as session_module
        from repro.campaign.runner import CampaignSummary

        class FakeCampaign:
            def __init__(self, config):
                self.config = config

            def run(self, pool=None, runtime=None, on_record=None):
                fields = dict(
                    benchmark="Grover-Sing(n=2)", mode="hybrid", workers=1, jobs=6,
                    holds=0, violated=0, errors=0, cache_hits=0,
                    analysis_seconds=0.0, wall_seconds=0.0,
                    report_path=self.config.report_path,
                )
                fields.update(summary_overrides)
                return CampaignSummary(**fields)

        monkeypatch.setattr(session_module, "Campaign", FakeCampaign)

    def test_job_errors_yield_nonzero_exit(self, tmp_path, capsys, monkeypatch):
        self._fake_campaign(monkeypatch, errors=6)
        assert main(self._argv(tmp_path)) == 1
        assert "errors: 6" in capsys.readouterr().out

    def test_violated_reference_yields_nonzero_exit(self, tmp_path, capsys, monkeypatch):
        self._fake_campaign(monkeypatch, violated=6, reference_violated=True)
        assert main(self._argv(tmp_path)) == 1
        assert "reference circuit violates" in capsys.readouterr().err


class TestCampaignMatrixCommand:
    def _argv(self, tmp_path, *extra):
        return [
            "campaign",
            "--report-dir", str(tmp_path / "reports"),
            "--manifest-dir", str(tmp_path / "manifests"),
            "--no-cache",
            *extra,
        ]

    @pytest.fixture
    def sweep_toml(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'families = ["mctoffoli", "ghz"]\nmodes = ["hybrid"]\nmutants = 2\n\n'
            '[sizes]\nmctoffoli = [2]\nghz = [3]\n'
        )
        return str(path)

    def test_matrix_sweep_prints_cell_table(self, tmp_path, sweep_toml, capsys):
        assert main(self._argv(tmp_path, "--matrix", sweep_toml)) == 0
        out = capsys.readouterr().out
        assert "mctoffoli-n2-hybrid" in out
        assert "ghz-n3-hybrid" in out
        assert "total" in out
        assert "summary.json" in out

    def test_resume_reuses_completed_cells(self, tmp_path, sweep_toml, capsys):
        assert main(self._argv(tmp_path, "--matrix", sweep_toml)) == 0
        out = capsys.readouterr().out
        campaign_id = next(word for word in out.split() if word.startswith("mx-"))
        assert main(self._argv(tmp_path, "--resume", campaign_id)) == 0
        out = capsys.readouterr().out
        assert "2 cell(s) reused from the manifest" in out
        assert "resumed" in out

    def test_inline_flags_build_a_sweep(self, tmp_path, capsys):
        argv = self._argv(tmp_path, "--families", "mctoffoli", "--sizes", "2-3",
                          "--modes", "hybrid,permutation", "--mutants", "2")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "mctoffoli-n2-permutation" in out
        assert "mctoffoli-n3-hybrid" in out

    def test_unsupported_combination_warns_but_runs(self, tmp_path, capsys):
        argv = self._argv(tmp_path, "--families", "mctoffoli,ghz", "--sizes", "2",
                          "--modes", "permutation", "--mutants", "1")
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "skipping ghz x permutation" in captured.err
        assert "mctoffoli-n2-permutation" in captured.out

    def test_family_flag_conflicts_with_matrix_mode(self, tmp_path, sweep_toml, capsys):
        argv = self._argv(tmp_path, "--matrix", sweep_toml, "--family", "ghz")
        assert main(argv) == 2
        assert "--families" in capsys.readouterr().err

    def test_campaign_without_any_selection_is_an_error(self, capsys):
        assert main(["campaign"]) == 2
        assert "needs --family" in capsys.readouterr().err

    def test_resume_of_unknown_campaign_is_an_error(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--resume", "mx-doesnotexist")) == 2
        assert "no manifest" in capsys.readouterr().err

    def test_resume_cannot_change_spec_fields(self, tmp_path, capsys):
        argv = self._argv(tmp_path, "--resume", "mx-x", "--mutants", "9")
        assert main(argv) == 2
        assert "cannot change" in capsys.readouterr().err

    def test_conflicting_resume_and_campaign_id_rejected(self, tmp_path, capsys):
        argv = self._argv(tmp_path, "--families", "ghz", "--resume", "mx-a",
                          "--campaign-id", "mx-b")
        assert main(argv) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_bad_spec_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "sweep.toml"
        path.write_text("families = [unclosed")
        assert main(self._argv(tmp_path, "--matrix", str(path))) == 2
        assert "error" in capsys.readouterr().err


class TestBaselinesCommand:
    def test_baselines_agree_on_identical_circuits(self, bell_qasm, capsys):
        assert main(["baselines", bell_qasm, bell_qasm]) == 0
        out = capsys.readouterr().out
        assert "path-sum" in out and "stabilizer" in out and "stimuli" in out

    def test_baselines_detect_clifford_bug(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["baselines", bell_qasm, buggy_bell_qasm]) == 1
        out = capsys.readouterr().out
        assert "not_equal" in out


class TestCampaignLsCommand:
    def _manifest_dir(self, tmp_path):
        return str(tmp_path / "manifests")

    def _run_sweep(self, tmp_path):
        argv = [
            "campaign", "--families", "mctoffoli", "--sizes", "2", "--modes", "hybrid",
            "--mutants", "2", "--no-cache",
            "--report-dir", str(tmp_path / "reports"),
            "--manifest-dir", self._manifest_dir(tmp_path),
        ]
        assert main(argv) == 0

    def test_ls_lists_completed_campaigns(self, tmp_path, capsys):
        self._run_sweep(tmp_path)
        capsys.readouterr()
        assert main(["campaign", "ls", "--manifest-dir", self._manifest_dir(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mx-" in out
        assert "complete" in out
        assert "1/1" in out  # one cell, done
        # the verdict totals come from the stored cell summaries
        assert "3" in out  # 2 mutants + the reference

    def test_ls_reports_resumable_campaigns(self, tmp_path, capsys):
        from repro.campaign import CampaignManifest

        directory = self._manifest_dir(tmp_path)
        manifest = CampaignManifest.create(
            directory, "mx-partial", {"families": ["ghz"]}, "fp", ["cell-a", "cell-b", "cell-c"]
        )
        manifest.mark_running("cell-a")
        manifest.mark_done("cell-b", {"jobs": 5, "holds": 4, "violated": 1,
                                      "unsupported": 0, "errors": 0})
        assert main(["campaign", "ls", "--manifest-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "mx-partial" in out
        assert "resumable" in out
        assert "1 interrupted" in out
        assert "1 pending" in out
        assert "1/3" in out

    def test_ls_empty_directory(self, tmp_path, capsys):
        assert main(["campaign", "ls", "--manifest-dir", self._manifest_dir(tmp_path)]) == 0
        assert "no campaign manifests" in capsys.readouterr().out

    def test_ls_rejects_sweep_flags(self, tmp_path, capsys):
        argv = ["campaign", "ls", "--family", "grover",
                "--manifest-dir", self._manifest_dir(tmp_path)]
        assert main(argv) == 2
        assert "--family" in capsys.readouterr().err

    def test_ls_skips_unreadable_manifests(self, tmp_path, capsys):
        import os

        directory = self._manifest_dir(tmp_path)
        os.makedirs(directory)
        with open(os.path.join(directory, "mx-broken.json"), "w") as handle:
            handle.write("{not json")
        assert main(["campaign", "ls", "--manifest-dir", directory]) == 0
        captured = capsys.readouterr()
        assert "mx-broken" in captured.err
        assert "unreadable" in captured.err


class TestProfileFlag:
    def test_verify_profile_prints_phase_breakdown(self, capsys):
        from repro.core.engine import clear_gate_cache

        clear_gate_cache()  # warm memo hits would leave nothing to time
        assert main(["verify", "--family", "ghz", "--size", "3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phases:" in out
        assert "reduce=" in out

    def test_campaign_profile_prints_phase_breakdown(self, tmp_path, capsys):
        argv = ["campaign", "--family", "grover", "--mutants", "2", "--no-cache",
                "--report", str(tmp_path / "report.jsonl"), "--profile"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "phases:" in out

    def test_campaign_records_carry_phase_seconds(self, tmp_path):
        import json

        report = tmp_path / "report.jsonl"
        argv = ["campaign", "--family", "grover", "--mutants", "2", "--no-cache",
                "--report", str(report)]
        assert main(argv) == 0
        with open(report) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert records
        for record in records:
            assert "phase_seconds" in record["statistics"]


class TestJsonOutput:
    """Every subcommand supports ``--json``; each document validates against
    the versioned schema and round-trips through ``Result.from_json``."""

    @staticmethod
    def _run_json(capsys, argv, expected_kind, expected_exit):
        """Run the CLI, parse stdout as one schema-valid document, round-trip it."""
        import json

        from repro.api import Result, validate_document

        exit_code = main(argv)
        out = capsys.readouterr().out
        assert exit_code == expected_exit, f"{argv}: exit {exit_code}, output: {out}"
        document = json.loads(out)  # stdout must be exactly one JSON document
        validate_document(document, kind=expected_kind)
        restored = Result.from_json(out)
        assert restored.to_json() == out.rstrip("\n"), f"{argv}: round-trip changed the document"
        assert restored.exit_code == expected_exit, (
            f"{argv}: deserialized document reports exit {restored.exit_code}"
        )
        return document

    def test_verify_json(self, capsys):
        document = self._run_json(
            capsys, ["verify", "--family", "bv", "--size", "3", "--json"], "verify", 0
        )
        assert document["holds"] is True
        assert document["benchmark"].startswith("BV")
        assert document["statistics"]["gates_total"] > 0

    def test_verify_json_with_profile_keeps_stdout_pure(self, capsys):
        document = self._run_json(
            capsys, ["verify", "--family", "ghz", "--size", "3", "--profile", "--json"],
            "verify", 0,
        )
        assert "phase_seconds" in document["statistics"]

    def test_simulate_json(self, bell_qasm, capsys):
        document = self._run_json(capsys, ["simulate", bell_qasm, "--json"], "simulate", 0)
        assert sorted(entry["basis"] for entry in document["amplitudes"]) == ["00", "11"]

    def test_equivalence_json(self, bell_qasm, buggy_bell_qasm, capsys):
        document = self._run_json(
            capsys, ["equivalence", bell_qasm, buggy_bell_qasm, "--json"], "equivalence", 1
        )
        assert document["non_equivalent"] is True
        assert document["witness"] is not None

    def test_bughunt_json(self, bell_qasm, buggy_bell_qasm, capsys):
        document = self._run_json(
            capsys, ["bughunt", bell_qasm, buggy_bell_qasm, "--json"], "bughunt", 1
        )
        assert document["bug_found"] is True
        assert document["iterations"] >= 1

    def test_generate_json(self, tmp_path, capsys):
        output = tmp_path / "ghz.qasm"
        document = self._run_json(
            capsys, ["generate", "--family", "ghz", "--size", "4", str(output), "--json"],
            "generate", 0,
        )
        assert document["data"]["qubits"] == 4
        assert output.exists()

    def test_inject_json(self, bell_qasm, tmp_path, capsys):
        output = tmp_path / "buggy.qasm"
        document = self._run_json(
            capsys, ["inject", bell_qasm, str(output), "--seed", "3", "--json"], "inject", 0
        )
        assert document["data"]["gates"] == 3
        assert output.exists()

    def test_stats_json(self, bell_qasm, capsys):
        document = self._run_json(capsys, ["stats", bell_qasm, "--json"], "stats", 0)
        assert document["data"]["qubits"] == 2
        assert document["data"]["histogram"]["h"] == 1

    def test_export_ta_json(self, tmp_path, capsys):
        output = tmp_path / "pre.timbuk"
        document = self._run_json(
            capsys,
            ["export-ta", "--family", "bv", "--size", "3", str(output), "--json"],
            "export-ta", 0,
        )
        assert document["data"]["states"] > 0
        assert output.exists()

    def test_baselines_json(self, bell_qasm, buggy_bell_qasm, capsys):
        document = self._run_json(
            capsys, ["baselines", bell_qasm, buggy_bell_qasm, "--json"], "baselines", 1
        )
        assert document["data"]["any_difference"] is True

    def test_campaign_json(self, tmp_path, capsys):
        argv = ["campaign", "--family", "grover", "--mutants", "3", "--no-cache",
                "--no-store", "--report", str(tmp_path / "report.jsonl"), "--json"]
        document = self._run_json(capsys, argv, "campaign", 0)
        assert document["jobs"] == 4

    def test_campaign_matrix_json(self, tmp_path, capsys):
        argv = ["campaign", "--families", "mctoffoli", "--sizes", "2", "--modes", "hybrid",
                "--mutants", "2", "--no-cache",
                "--report-dir", str(tmp_path / "reports"),
                "--manifest-dir", str(tmp_path / "manifests"), "--json"]
        document = self._run_json(capsys, argv, "campaign-matrix", 0)
        assert document["data"]["totals"]["jobs"] == 3
        assert document["data"]["trustworthy"] is True

    def test_campaign_ls_json(self, tmp_path, capsys):
        manifests = str(tmp_path / "manifests")
        argv = ["campaign", "--families", "mctoffoli", "--sizes", "2", "--modes", "hybrid",
                "--mutants", "1", "--no-cache",
                "--report-dir", str(tmp_path / "reports"), "--manifest-dir", manifests]
        assert main(argv) == 0
        capsys.readouterr()
        document = self._run_json(
            capsys, ["campaign", "ls", "--manifest-dir", manifests, "--json"],
            "campaign-ls", 0,
        )
        assert len(document["data"]["campaigns"]) == 1
        assert document["data"]["campaigns"][0]["complete"] is True

    def test_campaign_ls_json_reports_unreadable_manifests(self, tmp_path, capsys):
        import os

        manifests = str(tmp_path / "manifests")
        os.makedirs(manifests)
        with open(os.path.join(manifests, "mx-broken.json"), "w") as handle:
            handle.write("{not json")
        document = self._run_json(
            capsys, ["campaign", "ls", "--manifest-dir", manifests, "--json"],
            "campaign-ls", 0,
        )
        assert document["data"]["campaigns"] == []
        assert document["data"]["unreadable"][0]["campaign_id"] == "mx-broken"

    def test_cache_json_kinds(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        cache_dir = str(tmp_path / "cache")
        self._run_json(
            capsys, ["cache", "stats", "--json", "--store-dir", store_dir,
                     "--cache-dir", cache_dir],
            "cache-stats", 0,
        )
        self._run_json(
            capsys, ["cache", "gc", "--max-bytes", "0", "--json", "--store-dir", store_dir],
            "cache-gc", 0,
        )
        self._run_json(
            capsys, ["cache", "clear", "--json", "--store-dir", store_dir], "cache-clear", 0
        )

    def test_campaign_jsonl_records_validate_against_the_schema(self, tmp_path, capsys):
        import json

        from repro.api import API_VERSION, validate_document

        report = tmp_path / "report.jsonl"
        argv = ["campaign", "--family", "grover", "--mutants", "3", "--no-cache",
                "--no-store", "--report", str(report)]
        assert main(argv) == 0
        with open(report) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert records
        for record in records:
            assert record["api_version"] == API_VERSION
            validate_document(record, kind="campaign-job")


class TestJsonExitCodes:
    """`--json` never changes the exit-code contract of a subcommand."""

    def test_verify_violation_exits_nonzero(self, capsys, monkeypatch):
        import repro.api.session as session_module
        from repro.api.results import VerifyResult
        from repro.core.engine import EngineStatistics

        monkeypatch.setattr(
            session_module.Session, "_run_verify",
            lambda self, problem: VerifyResult(
                holds=False, witness="w", witness_kind="k", statistics=EngineStatistics()
            ),
        )
        assert main(["verify", "--family", "bv", "--size", "3", "--json"]) == 1
        capsys.readouterr()
        assert main(["verify", "--family", "bv", "--size", "3"]) == 1

    def test_equivalent_circuits_exit_zero(self, bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, bell_qasm, "--json"]) == 0
        capsys.readouterr()

    def test_bughunt_usage_error_still_exits_2(self, bell_qasm, capsys):
        assert main(["bughunt", bell_qasm, "--json"]) == 2
        captured = capsys.readouterr()
        # under --json even failures are documents on stdout, never stderr
        document = json.loads(captured.out)
        assert document["kind"] == "error"
        assert not captured.err.strip()

    def test_campaign_config_error_still_exits_2(self, tmp_path, capsys):
        argv = ["campaign", "--family", "grover", "--mutants", "2", "--mutations",
                "teleport", "--no-cache", "--no-store",
                "--report", str(tmp_path / "r.jsonl"), "--json"]
        assert main(argv) == 2
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["kind"] == "error"
        assert "teleport" in document["message"]
        assert not captured.err.strip()


class TestJsonErrorEnvelope:
    """Every ``--json`` failure path emits one versioned ``error`` document on
    stdout (the PR 6 contract: machine callers never parse stderr)."""

    @staticmethod
    def _run_error(capsys, argv, expected_error, expected_exit=2):
        from repro.api import Result, validate_document

        exit_code = main(argv)
        captured = capsys.readouterr()
        assert exit_code == expected_exit, f"{argv}: exit {exit_code}"
        assert not captured.err.strip(), f"{argv}: stderr not empty: {captured.err}"
        document = json.loads(captured.out)
        validate_document(document, kind="error")
        assert document["error"] == expected_error
        restored = Result.from_json(captured.out)
        assert restored.exit_code == expected_exit
        assert restored.to_json() == captured.out.rstrip("\n")
        return document

    def test_bughunt_missing_candidate(self, bell_qasm, capsys):
        document = self._run_error(
            capsys, ["bughunt", bell_qasm, "--json"], "invalid-request")
        assert "--inject-seed" in document["message"]

    def test_cache_gc_without_budget(self, tmp_path, capsys):
        self._run_error(capsys,
                        ["cache", "gc", "--store-dir", str(tmp_path), "--json"],
                        "invalid-request")

    def test_campaign_without_selection(self, capsys):
        self._run_error(capsys, ["campaign", "--json"], "invalid-request")

    def test_campaign_ls_with_sweep_flags(self, tmp_path, capsys):
        self._run_error(capsys,
                        ["campaign", "ls", "--family", "grover", "--json"],
                        "invalid-request")

    def test_campaign_family_conflicts_with_matrix(self, capsys):
        self._run_error(capsys,
                        ["campaign", "--family", "grover", "--families", "bv",
                         "--json"], "invalid-request")

    def test_matrix_with_explicit_server_is_rejected(self, capsys):
        document = self._run_error(
            capsys,
            ["campaign", "--families", "bv", "--sizes", "3",
             "--server", "http://127.0.0.1:1", "--json"],
            "invalid-request")
        assert "--server" in document["message"]

    def test_campaign_report_os_error(self, tmp_path, capsys):
        report = tmp_path / "not-a-dir" / "r.jsonl"
        document = self._run_error(
            capsys,
            ["campaign", "--family", "grover", "--mutants", "2", "--no-cache",
             "--no-store", "--report", str(report), "--json"],
            "os-error")
        assert "cannot write report" in document["message"]

    def test_resume_of_unknown_campaign_is_a_manifest_error(self, tmp_path, capsys):
        self._run_error(
            capsys,
            ["campaign", "--resume", "mx-nope", "--no-cache", "--no-store",
             "--manifest-dir", str(tmp_path), "--json"],
            "manifest-error")

    def test_plain_text_failures_keep_the_stderr_contract(self, bell_qasm, capsys):
        assert main(["bughunt", bell_qasm]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert not captured.out.strip()


class TestCacheCommand:
    def test_stats_on_an_empty_store(self, tmp_path, capsys):
        argv = ["cache", "stats", "--store-dir", str(tmp_path / "store"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "entries:      0" in out
        assert str(tmp_path / "store") in out

    def test_stats_json_after_a_store_backed_campaign(self, tmp_path, capsys):
        import json

        from repro.core.engine import clear_gate_cache

        clear_gate_cache()  # a warm process memo would publish nothing
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "--family", "grover", "--mutants", "2", "--no-cache",
                     "--store-dir", store_dir,
                     "--report", str(tmp_path / "report.jsonl")]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--store-dir", store_dir,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.api import API_VERSION

        # cache documents now carry the versioned envelope (PR 5)
        assert payload["api_version"] == API_VERSION
        assert payload["kind"] == "cache-stats"
        assert payload["data"]["store"]["entries"] > 0

    def test_gc_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "gc", "--store-dir", str(tmp_path / "store")]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_and_clear_empty_the_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["campaign", "--family", "grover", "--mutants", "2", "--no-cache",
                     "--store-dir", store_dir,
                     "--report", str(tmp_path / "report.jsonl")]) == 0
        assert main(["cache", "gc", "--max-bytes", "0", "--store-dir", store_dir]) == 0
        assert main(["cache", "clear", "--store-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store-dir", store_dir,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "entries:      0" in capsys.readouterr().out

    def test_campaign_no_store_with_no_cache_prints_no_store_line(self, tmp_path, capsys):
        assert main(["campaign", "--family", "grover", "--mutants", "2", "--no-cache",
                     "--no-store", "--report", str(tmp_path / "report.jsonl")]) == 0
        assert "store:" not in capsys.readouterr().out
