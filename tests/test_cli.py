"""Tests for the ``autoq-repro`` command-line interface."""

import pytest

from repro.circuits import Circuit, save_qasm_file, to_qasm
from repro.cli import build_parser, main


@pytest.fixture
def bell_qasm(tmp_path):
    path = tmp_path / "bell.qasm"
    save_qasm_file(Circuit(2).add("h", 0).add("cx", 0, 1), str(path))
    return str(path)


@pytest.fixture
def buggy_bell_qasm(tmp_path):
    path = tmp_path / "bell_buggy.qasm"
    save_qasm_file(Circuit(2).add("h", 0).add("cx", 0, 1).add("z", 1), str(path))
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_arguments(self):
        args = build_parser().parse_args(["verify", "--family", "bv", "--size", "5"])
        assert args.family == "bv"
        assert args.size == 5

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--family", "shor", "--size", "5"])


class TestVerifyCommand:
    def test_bv_verification_succeeds(self, capsys):
        assert main(["verify", "--family", "bv", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "BV(n=4)" in out

    def test_mctoffoli_verification_succeeds(self, capsys):
        assert main(["verify", "--family", "mctoffoli", "--size", "3"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_grover_single_verification(self, capsys):
        assert main(["verify", "--family", "grover-single", "--size", "2"]) == 0
        assert "HOLDS" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulate_default_input(self, bell_qasm, capsys):
        assert main(["simulate", bell_qasm]) == 0
        out = capsys.readouterr().out
        assert "|00>" in out and "|11>" in out

    def test_simulate_custom_input(self, bell_qasm, capsys):
        assert main(["simulate", bell_qasm, "--input", "10"]) == 0
        assert "|11>" in capsys.readouterr().out


class TestEquivalenceCommand:
    def test_equivalent_circuits(self, bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, bell_qasm]) == 0
        assert "coincide" in capsys.readouterr().out

    def test_non_equivalent_circuits(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, buggy_bell_qasm]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out

    def test_single_input_restriction(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["equivalence", bell_qasm, buggy_bell_qasm, "--single-input", "00"]) == 1


class TestBughuntCommand:
    def test_hunt_between_two_files(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["bughunt", bell_qasm, buggy_bell_qasm]) == 1
        out = capsys.readouterr().out
        assert "BUG FOUND" in out

    def test_hunt_with_injected_bug(self, bell_qasm, capsys):
        exit_code = main(["bughunt", bell_qasm, "--inject-seed", "3"])
        out = capsys.readouterr().out
        assert "injected bug" in out
        assert exit_code in (0, 1)

    def test_hunt_without_candidate_is_an_error(self, bell_qasm, capsys):
        assert main(["bughunt", bell_qasm]) == 2

    def test_hunt_identical_circuits(self, bell_qasm, capsys):
        assert main(["bughunt", bell_qasm, bell_qasm, "--max-iterations", "2"]) == 0
        assert "no difference" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_ghz_circuit(self, tmp_path, capsys):
        output = tmp_path / "ghz.qasm"
        assert main(["generate", "--family", "ghz", "--size", "5", str(output)]) == 0
        assert "GHZ(n=5)" in capsys.readouterr().out
        from repro.circuits import load_qasm_file

        circuit = load_qasm_file(str(output))
        assert circuit.num_qubits == 5
        assert circuit.count_kind("cx") == 4

    def test_generate_qft_circuit_round_trips_through_qasm(self, tmp_path):
        output = tmp_path / "qft.qasm"
        assert main(["generate", "--family", "qft-zero", "--size", "4", str(output)]) == 0
        from repro.circuits import load_qasm_file

        circuit = load_qasm_file(str(output))
        assert circuit.count_kind("cs") == 3

    def test_new_families_are_verifiable(self, capsys):
        assert main(["verify", "--family", "ghz", "--size", "4"]) == 0
        assert "HOLDS" in capsys.readouterr().out
        assert main(["verify", "--family", "qft-zero", "--size", "3"]) == 0
        assert "HOLDS" in capsys.readouterr().out


class TestInjectCommand:
    def test_inject_writes_a_mutated_copy(self, bell_qasm, tmp_path, capsys):
        output = tmp_path / "buggy.qasm"
        assert main(["inject", bell_qasm, str(output), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "injected bug" in out
        from repro.circuits import load_qasm_file

        original = load_qasm_file(bell_qasm)
        mutated = load_qasm_file(str(output))
        assert mutated.num_gates == original.num_gates + 1


class TestStatsCommand:
    def test_stats_reports_histogram(self, bell_qasm, capsys):
        assert main(["stats", bell_qasm]) == 0
        out = capsys.readouterr().out
        assert "qubits:   2" in out
        assert "h" in out and "cx" in out
        assert "composition-based encoding" in out


class TestExportTaCommand:
    def test_export_precondition_in_timbuk_format(self, tmp_path, capsys):
        output = tmp_path / "pre.timbuk"
        assert main(["export-ta", "--family", "bv", "--size", "4", str(output)]) == 0
        assert "pre-condition" in capsys.readouterr().out
        from repro.ta.timbuk import load_timbuk

        automaton = load_timbuk(str(output))
        assert automaton.num_qubits == 5  # n data qubits + 1 ancilla

    def test_export_postcondition(self, tmp_path):
        output = tmp_path / "post.timbuk"
        assert main(["export-ta", "--family", "ghz", "--size", "3", "--which", "post", str(output)]) == 0
        from repro.states import QuantumState
        from repro.benchgen import ghz_state
        from repro.ta.timbuk import load_timbuk

        automaton = load_timbuk(str(output))
        assert automaton.accepts(ghz_state(3))
        assert not automaton.accepts(QuantumState.zero_state(3))


class TestBaselinesCommand:
    def test_baselines_agree_on_identical_circuits(self, bell_qasm, capsys):
        assert main(["baselines", bell_qasm, bell_qasm]) == 0
        out = capsys.readouterr().out
        assert "path-sum" in out and "stabilizer" in out and "stimuli" in out

    def test_baselines_detect_clifford_bug(self, bell_qasm, buggy_bell_qasm, capsys):
        assert main(["baselines", bell_qasm, buggy_bell_qasm]) == 1
        out = capsys.readouterr().out
        assert "not_equal" in out
