"""End-to-end chaos tests: campaigns and the service under injected faults.

The invariant everywhere is *verdict equality*: a run under a seeded
kill/corrupt/raise plan must produce exactly the verdicts of the fault-free
run — robustness machinery may add retries, quarantined files, and counters,
but never change an answer.  ``scripts/chaos_smoke.py`` runs the same check
as a subprocess-level CI gate.
"""

import os

import pytest

from repro.api import CircuitSource, SessionConfig, VerifyProblem
from repro.campaign import CampaignConfig, read_report, run_campaign
from repro.core.engine import clear_gate_cache, set_gate_store
from repro.faults import FaultPlan, FaultSpec, install_fault_plan, install_injector
from repro.service import ServiceConfig, VerificationService
from repro.ta.store import QUARANTINE_DIR


@pytest.fixture(autouse=True)
def _clean_process():
    """No armed plan, no configured store, no warm memo leaks across tests."""
    install_injector(None)
    yield
    install_injector(None)
    set_gate_store(None)
    clear_gate_cache()


def _config(tmp_path, name: str, **overrides) -> CampaignConfig:
    """One isolated campaign run: its own report, cache, and store."""
    base = tmp_path / name
    settings = dict(
        family="grover",
        mutants=4,
        mutation_kinds=("insert", "remove"),
        workers=1,
        report_path=str(base / "report.jsonl"),
        cache_dir=str(base / "cache"),
        store_dir=str(base / "store"),
    )
    settings.update(overrides)
    return CampaignConfig(**settings)


def _verdicts(config: CampaignConfig):
    return [(record["job_id"], record["verdict"])
            for record in read_report(config.report_path)]


class TestStoreChaos:
    def test_store_faults_do_not_change_verdicts(self, tmp_path):
        clean = _config(tmp_path, "clean")
        clean_summary = run_campaign(clean)

        plan = FaultPlan(seed=1, sites=(
            FaultSpec(site="store.put", kind="corrupt-payload", rate=0.3),
            FaultSpec(site="store.get", kind="raise", every=5, limit=2),
        ))
        clear_gate_cache()  # a warm memo would never reach the store tier
        chaotic = _config(tmp_path, "chaos", fault_plan=plan)
        chaos_summary = run_campaign(chaotic)

        assert _verdicts(chaotic) == _verdicts(clean)
        assert chaos_summary.jobs == clean_summary.jobs == 5
        assert chaos_summary.errors == clean_summary.errors == 0
        # the plan actually did damage, and the run reported it
        assert chaos_summary.faults_injected > 0
        assert clean_summary.faults_injected == 0
        assert clean_summary.retries == 0

    def test_corrupted_puts_end_up_quarantined_on_reread(self, tmp_path):
        plan = FaultPlan(seed=3, sites=(
            FaultSpec(site="store.put", kind="corrupt-payload", rate=1.0,
                      limit=4),
        ))
        first = _config(tmp_path, "first", fault_plan=plan)
        run_campaign(first)
        # second run over the same store (fresh memo) must trip over the
        # corrupt entries, quarantine them, recompute, and agree anyway
        clear_gate_cache()
        second = _config(tmp_path, "second", store_dir=first.store_dir)
        summary = run_campaign(second)
        assert _verdicts(second) == _verdicts(first)
        assert summary.quarantined_entries > 0
        quarantine = os.path.join(first.store_dir, QUARANTINE_DIR)
        assert any(name.endswith(".reason") for name in os.listdir(quarantine))


class TestWorkerChaos:
    def test_injected_cell_raise_is_retried_serially(self, tmp_path):
        clean = _config(tmp_path, "clean")
        run_campaign(clean)

        plan = FaultPlan(seed=0, sites=(
            FaultSpec(site="worker.cell", kind="raise", every=3, limit=1),
        ))
        chaotic = _config(tmp_path, "chaos", fault_plan=plan)
        summary = run_campaign(chaotic)

        assert _verdicts(chaotic) == _verdicts(clean)
        records = read_report(chaotic.report_path)
        assert sum(int(record.get("retried") or 0) for record in records) == 1
        assert summary.retries >= 1
        assert summary.errors == 0

    def test_exhausted_retries_degrade_to_an_error_record(self, tmp_path):
        # every invocation raises and retries are disabled: every cell becomes
        # a synthetic worker-crash error, but the sweep still completes
        plan = FaultPlan(seed=0, sites=(
            FaultSpec(site="worker.cell", kind="raise", every=1),
        ))
        config = _config(tmp_path, "dead", fault_plan=plan, max_job_retries=0)
        summary = run_campaign(config)
        assert summary.jobs == 5
        assert summary.errors == 5
        records = read_report(config.report_path)
        assert all(record["verdict"] == "error" for record in records)
        assert all("worker-crash" in record["error"] for record in records)

    def test_pool_survives_killed_workers_with_identical_verdicts(self, tmp_path):
        clean = _config(tmp_path, "clean")
        clean_summary = run_campaign(clean)

        # each worker process SIGKILLs itself (os._exit) on its third cell;
        # with 5 jobs over 2 workers the pigeonhole guarantees at least one
        # kill, and corrupt writes gnaw at the shared store the whole time
        plan = FaultPlan(seed=2, sites=(
            FaultSpec(site="worker.cell", kind="crash-process", every=3,
                      limit=1),
            FaultSpec(site="store.put", kind="corrupt-payload", rate=0.1),
        ))
        chaotic = _config(tmp_path, "chaos", fault_plan=plan, workers=2,
                          max_job_retries=3)
        chaos_summary = run_campaign(chaotic)

        assert _verdicts(chaotic) == _verdicts(clean)
        assert chaos_summary.jobs == clean_summary.jobs
        assert chaos_summary.errors == 0
        records = read_report(chaotic.report_path)
        assert sum(int(record.get("retried") or 0) for record in records) >= 1
        assert chaos_summary.retries >= 1


class TestServiceChaos:
    def test_injected_request_fault_is_a_503_then_recovers(self):
        config = ServiceConfig(port=0, workers=2,
                               session=SessionConfig(cache_dir="", store_dir=""))
        with VerificationService(config) as service:
            document = VerifyProblem(
                circuit=CircuitSource.from_family("bv", 4)).to_dict()
            install_fault_plan(FaultPlan(seed=0, sites=(
                FaultSpec(site="service.request", kind="raise", every=1,
                          limit=1),
            )))
            status, payload = service.run_document(document)
            assert status == 503
            assert payload["error"] == "unavailable"
            # the fault budget is spent: the retried request goes through
            status, payload = service.run_document(document)
            assert status == 200
            assert payload["holds"] is True
            # the injection is visible on the metrics page
            text = service.metrics.render()
            assert 'repro_faults_injected_total{site="service.request"} 1' in text
