"""End-to-end chaos tests: campaigns and the service under injected faults.

The invariant everywhere is *verdict equality*: a run under a seeded
kill/corrupt/raise plan must produce exactly the verdicts of the fault-free
run — robustness machinery may add retries, quarantined files, and counters,
but never change an answer.  ``scripts/chaos_smoke.py`` runs the same check
as a subprocess-level CI gate.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.api import CircuitSource, SessionConfig, VerifyProblem
from repro.campaign import (
    CampaignConfig,
    MatrixScheduler,
    MatrixSpec,
    read_report,
    run_campaign,
)
from repro.core.engine import clear_gate_cache, set_gate_store
from repro.dist import CLAIM_DIR, JobQueue, queue_dir_for
from repro.faults import FaultPlan, FaultSpec, install_fault_plan, install_injector
from repro.service import ServiceConfig, VerificationService
from repro.ta.store import QUARANTINE_DIR

#: import root of the package under test, for subprocess workers
_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(autouse=True)
def _clean_process():
    """No armed plan, no configured store, no warm memo leaks across tests."""
    install_injector(None)
    yield
    install_injector(None)
    set_gate_store(None)
    clear_gate_cache()


def _config(tmp_path, name: str, **overrides) -> CampaignConfig:
    """One isolated campaign run: its own report, cache, and store."""
    base = tmp_path / name
    settings = dict(
        family="grover",
        mutants=4,
        mutation_kinds=("insert", "remove"),
        workers=1,
        report_path=str(base / "report.jsonl"),
        cache_dir=str(base / "cache"),
        store_dir=str(base / "store"),
    )
    settings.update(overrides)
    return CampaignConfig(**settings)


def _verdicts(config: CampaignConfig):
    return [(record["job_id"], record["verdict"])
            for record in read_report(config.report_path)]


class TestStoreChaos:
    def test_store_faults_do_not_change_verdicts(self, tmp_path):
        clean = _config(tmp_path, "clean")
        clean_summary = run_campaign(clean)

        plan = FaultPlan(seed=1, sites=(
            FaultSpec(site="store.put", kind="corrupt-payload", rate=0.3),
            FaultSpec(site="store.get", kind="raise", every=5, limit=2),
        ))
        clear_gate_cache()  # a warm memo would never reach the store tier
        chaotic = _config(tmp_path, "chaos", fault_plan=plan)
        chaos_summary = run_campaign(chaotic)

        assert _verdicts(chaotic) == _verdicts(clean)
        assert chaos_summary.jobs == clean_summary.jobs == 5
        assert chaos_summary.errors == clean_summary.errors == 0
        # the plan actually did damage, and the run reported it
        assert chaos_summary.faults_injected > 0
        assert clean_summary.faults_injected == 0
        assert clean_summary.retries == 0

    def test_corrupted_puts_end_up_quarantined_on_reread(self, tmp_path):
        plan = FaultPlan(seed=3, sites=(
            FaultSpec(site="store.put", kind="corrupt-payload", rate=1.0,
                      limit=4),
        ))
        first = _config(tmp_path, "first", fault_plan=plan)
        run_campaign(first)
        # second run over the same store (fresh memo) must trip over the
        # corrupt entries, quarantine them, recompute, and agree anyway
        clear_gate_cache()
        second = _config(tmp_path, "second", store_dir=first.store_dir)
        summary = run_campaign(second)
        assert _verdicts(second) == _verdicts(first)
        assert summary.quarantined_entries > 0
        quarantine = os.path.join(first.store_dir, QUARANTINE_DIR)
        assert any(name.endswith(".reason") for name in os.listdir(quarantine))


class TestWorkerChaos:
    def test_injected_cell_raise_is_retried_serially(self, tmp_path):
        clean = _config(tmp_path, "clean")
        run_campaign(clean)

        plan = FaultPlan(seed=0, sites=(
            FaultSpec(site="worker.cell", kind="raise", every=3, limit=1),
        ))
        chaotic = _config(tmp_path, "chaos", fault_plan=plan)
        summary = run_campaign(chaotic)

        assert _verdicts(chaotic) == _verdicts(clean)
        records = read_report(chaotic.report_path)
        assert sum(int(record.get("retried") or 0) for record in records) == 1
        assert summary.retries >= 1
        assert summary.errors == 0

    def test_exhausted_retries_degrade_to_an_error_record(self, tmp_path):
        # every invocation raises and retries are disabled: every cell becomes
        # a synthetic worker-crash error, but the sweep still completes
        plan = FaultPlan(seed=0, sites=(
            FaultSpec(site="worker.cell", kind="raise", every=1),
        ))
        config = _config(tmp_path, "dead", fault_plan=plan, max_job_retries=0)
        summary = run_campaign(config)
        assert summary.jobs == 5
        assert summary.errors == 5
        records = read_report(config.report_path)
        assert all(record["verdict"] == "error" for record in records)
        assert all("worker-crash" in record["error"] for record in records)

    def test_pool_survives_killed_workers_with_identical_verdicts(self, tmp_path):
        clean = _config(tmp_path, "clean")
        clean_summary = run_campaign(clean)

        # each worker process SIGKILLs itself (os._exit) on its third cell;
        # with 5 jobs over 2 workers the pigeonhole guarantees at least one
        # kill, and corrupt writes gnaw at the shared store the whole time
        plan = FaultPlan(seed=2, sites=(
            FaultSpec(site="worker.cell", kind="crash-process", every=3,
                      limit=1),
            FaultSpec(site="store.put", kind="corrupt-payload", rate=0.1),
        ))
        chaotic = _config(tmp_path, "chaos", fault_plan=plan, workers=2,
                          max_job_retries=3)
        chaos_summary = run_campaign(chaotic)

        assert _verdicts(chaotic) == _verdicts(clean)
        assert chaos_summary.jobs == clean_summary.jobs
        assert chaos_summary.errors == 0
        records = read_report(chaotic.report_path)
        assert sum(int(record.get("retried") or 0) for record in records) >= 1
        assert chaos_summary.retries >= 1


def _fabric_scheduler(tmp_path, campaign_id="fabric", **overrides) -> MatrixScheduler:
    spec = MatrixSpec.from_mapping({"families": ["bv"], "sizes": "2-5", "mutants": 2})
    settings = dict(
        workers=1,
        report_dir=str(tmp_path / "reports" / campaign_id),
        manifest_dir=str(tmp_path / "manifests"),
        cache_dir=str(tmp_path / "cache" / campaign_id),
        campaign_id=campaign_id,
    )
    settings.update(overrides)
    return MatrixScheduler(spec, **settings)


def _spawn_joiner(tmp_path, campaign_id, name, faults=None) -> subprocess.Popen:
    """``campaign --join`` in a real separate process, JSON output captured."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro.cli", "campaign",
            "--join", campaign_id, "--json",
            "--manifest-dir", str(tmp_path / "manifests"),
            "--cache-dir", str(tmp_path / "cache" / name),
            "--report-dir", str(tmp_path / "reports" / name)]
    if faults is not None:
        argv += ["--faults", json.dumps(faults.to_dict())]
    return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def _verdict_rows(rows):
    return sorted((row["cell"], row["jobs"], row["holds"], row["violated"],
                   row["unsupported"], row["errors"]) for row in rows)


class TestFabricChaos:
    def test_two_joined_processes_never_run_a_cell_twice(self, tmp_path):
        coordinator = _fabric_scheduler(tmp_path)
        coordinator.plan()

        workers = [_spawn_joiner(tmp_path, "fabric", f"joiner-{index}")
                   for index in range(2)]
        documents = []
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, stderr
            documents.append(json.loads(stdout))

        executed = [
            {row["cell"] for row in document["data"]["cells"]}
            for document in documents
        ]
        # between them the joiners drained the whole sweep, without overlap
        assert executed[0].isdisjoint(executed[1])
        all_cells = {cell.cell_id for cell in coordinator.spec.cells()}
        assert executed[0] | executed[1] == all_cells
        for document in documents:
            counters = document["data"]["counters"]
            assert counters["duplicates"] == 0
            assert counters["conflicts"] == 0

        # the coordinator merges the joiners' results without re-executing
        result = coordinator.run(resume=True)
        assert result.trustworthy
        assert result.totals["errors"] == 0
        assert result.totals["jobs"] == len(all_cells) * 3  # reference + 2 mutants

    def test_sigkilled_joiner_is_stolen_and_verdicts_match_solo(self, tmp_path):
        solo = _fabric_scheduler(tmp_path, campaign_id="solo").run()

        coordinator = _fabric_scheduler(tmp_path)
        coordinator.plan()
        # slow every verification job down so the joiner is mid-cell for
        # seconds — long enough to observe its claim and SIGKILL it
        molasses = FaultPlan(seed=0, sites=(
            FaultSpec(site="worker.cell", kind="delay", rate=1.0,
                      delay_seconds=1.0),
        ))
        victim = _spawn_joiner(tmp_path, "fabric", "victim", faults=molasses)
        claim_dir = os.path.join(
            queue_dir_for(str(tmp_path / "manifests"), "fabric"), CLAIM_DIR)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if os.path.isdir(claim_dir) and os.listdir(claim_dir):
                break
            time.sleep(0.05)
        else:
            pytest.fail("joiner never claimed a cell")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        # the dead pid makes the victim's lease stale immediately; the
        # coordinator steals the cell and finishes the sweep
        result = coordinator.run(resume=True)
        assert result.trustworthy
        assert result.totals["cells_stolen"] >= 1
        assert _verdict_rows(result.rows) == _verdict_rows(solo.rows)
        # no cell was counted twice anywhere in the roll-up
        assert result.totals["jobs"] == solo.totals["jobs"]


class TestServiceChaos:
    def test_injected_request_fault_is_a_503_then_recovers(self):
        config = ServiceConfig(port=0, workers=2,
                               session=SessionConfig(cache_dir="", store_dir=""))
        with VerificationService(config) as service:
            document = VerifyProblem(
                circuit=CircuitSource.from_family("bv", 4)).to_dict()
            install_fault_plan(FaultPlan(seed=0, sites=(
                FaultSpec(site="service.request", kind="raise", every=1,
                          limit=1),
            )))
            status, payload = service.run_document(document)
            assert status == 503
            assert payload["error"] == "unavailable"
            # the fault budget is spent: the retried request goes through
            status, payload = service.run_document(document)
            assert status == 200
            assert payload["holds"] is True
            # the injection is visible on the metrics page
            text = service.metrics.render()
            assert 'repro_faults_injected_total{site="service.request"} 1' in text
