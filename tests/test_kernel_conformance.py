"""Kernel conformance suite: every backend must be bit-identical to reference.

The contract (see ``repro/ta/kernel/__init__.py``): for each of the three
hot-path operations, every backend must produce output *structurally equal* to
the reference backend — the same state ids assigned in the same order, the
same transition-tuple order, hence identical ``structure_key()`` — and must
preserve the identity fast paths (returning the input object itself when
nothing changes).  The suite drives both backends over randomized layered
automata (hypothesis-chosen seeds through the fuzz generators and stacked
basis states), plus the structural edge cases random generation rarely hits.

The vectorized backend is constructed with ``min_transitions=0`` so its vector
code paths run even on the tiny automata used here (the production default
delegates small inputs to reference, which would make the suite vacuous).
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, SQRT2_INV
from repro.circuits import random_circuit
from repro.core.engine import AnalysisMode, CircuitEngine, GateRuntime
from repro.core.tagging import tag
from repro.fuzz.generators import generate_cases
from repro.ta import basis_product_ta, basis_state_ta
from repro.ta import kernel as ta_kernel
from repro.ta.automaton import TreeAutomaton, clear_reduce_cache
from repro.ta.construction import from_quantum_states
from repro.ta.kernel.reference import ReferenceBackend
from repro.states import QuantumState

numpy_available = "numpy" in ta_kernel.available_backends()
requires_numpy = pytest.mark.skipif(
    not numpy_available, reason="numpy backend not available"
)

REFERENCE = ReferenceBackend()


def _forced_backends():
    """(name, backend) pairs to check against reference, vector paths forced."""
    pairs = []
    if numpy_available:
        from repro.ta.kernel.vectorized import VectorizedBackend

        pairs.append(("numpy", VectorizedBackend(min_transitions=0)))
    return pairs


BACKENDS = _forced_backends()

if not BACKENDS:  # reference alone satisfies conformance trivially
    pytestmark = pytest.mark.skipif(
        True, reason="no non-reference kernel backend available"
    )


# --------------------------------------------------------------------- inputs

def _stacked(num_qubits: int, count: int, seed: int) -> TreeAutomaton:
    """Union of ``count`` random basis states — a layered, useless-free TA."""
    import random

    rng = random.Random(seed)
    result = basis_state_ta(num_qubits, rng.randrange(2 ** num_qubits))
    for _ in range(count - 1):
        result = result.union(basis_state_ta(num_qubits, rng.randrange(2 ** num_qubits)))
    return result.relabelled()


def _engine_derived(seed: int) -> TreeAutomaton:
    """The automaton after a short random circuit — realistic shapes/amplitudes."""
    import random

    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    circuit = random_circuit(num_qubits=num_qubits, num_gates=rng.randint(3, 10), seed=seed)
    engine = CircuitEngine(mode=AnalysisMode.HYBRID, runtime=GateRuntime())
    automaton = basis_state_ta(num_qubits, 0)
    with ta_kernel.use_backend("reference"):
        for gate in circuit.decomposed():
            automaton = engine.apply_gate(automaton, gate)
    return automaton


def _assert_identical(expected: TreeAutomaton, actual: TreeAutomaton, context: str):
    assert expected.structure_key() == actual.structure_key(), context


# ------------------------------------------------------- conformance properties

@pytest.mark.parametrize("name,backend", BACKENDS)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_binary_operation_is_bit_identical(name, backend, seed):
    import random

    rng = random.Random(seed)
    num_qubits = rng.randint(2, 5)
    left = _stacked(num_qubits, rng.randint(1, 6), seed)
    right = _stacked(num_qubits, rng.randint(1, 6), seed + 1)
    for subtract in (False, True):
        expected = REFERENCE.binary_operation(left, right, subtract)
        actual = backend.binary_operation(left, right, subtract)
        _assert_identical(
            expected, actual, f"{name} product diverged (seed={seed}, subtract={subtract})"
        )


@pytest.mark.parametrize("name,backend", BACKENDS)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_pipeline_is_bit_identical_on_engine_automata(name, backend, seed):
    """Product -> remove_useless -> reduce_layered over engine-derived operands."""
    base = _engine_derived(seed)
    other = _engine_derived(seed + 7919)
    if base.num_qubits != other.num_qubits:
        other = _stacked(base.num_qubits, 3, seed)
    expected_product = REFERENCE.binary_operation(base, other)
    actual_product = backend.binary_operation(base, other)
    _assert_identical(expected_product, actual_product, f"{name} product (seed={seed})")
    expected_useless = REFERENCE.remove_useless(expected_product)
    actual_useless = backend.remove_useless(actual_product)
    _assert_identical(expected_useless, actual_useless, f"{name} remove_useless (seed={seed})")
    # the identity fast path is part of the contract: callers test ``is``
    assert (expected_useless is expected_product) == (actual_useless is actual_product)
    if expected_useless._state_depths() is not None:
        expected_reduced = REFERENCE.reduce_layered(expected_useless)
        actual_reduced = backend.reduce_layered(actual_useless)
        _assert_identical(expected_reduced, actual_reduced, f"{name} reduce (seed={seed})")
        assert (expected_reduced is expected_useless) == (actual_reduced is actual_useless)


@pytest.mark.parametrize("name,backend", BACKENDS)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_remove_useless_prunes_identically(name, backend, seed):
    """Operands with dead states (restricted products) prune identically."""
    import random

    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    allowed = [rng.choice([{0}, {1}, {0, 1}]) for _ in range(num_qubits)]
    left = basis_product_ta(num_qubits, allowed)
    right = _stacked(num_qubits, rng.randint(1, 4), seed)
    product = REFERENCE.binary_operation(left, right, subtract=True)
    expected = REFERENCE.remove_useless(product)
    actual = backend.remove_useless(product)
    _assert_identical(expected, actual, f"{name} remove_useless (seed={seed})")
    assert (expected is product) == (actual is product)


@pytest.mark.parametrize("name,backend", BACKENDS)
@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=15, deadline=None)
def test_parity_on_fuzz_generator_circuits(name, backend, seed):
    """The fuzz generator's mutated circuits, replayed gate by gate."""
    stream = generate_cases(seed, max_qubits=3, max_gates=6)
    case = next(stream)
    gates = list(case.circuit.decomposed())
    engines = {
        "reference": CircuitEngine(mode=AnalysisMode.HYBRID, runtime=GateRuntime()),
        name: CircuitEngine(mode=AnalysisMode.HYBRID, runtime=GateRuntime()),
    }
    states = {}
    for backend_name, engine in engines.items():
        clear_reduce_cache()
        automaton = basis_state_ta(case.circuit.num_qubits, case.input_bits)
        with ta_kernel.use_backend(backend_name):
            keys = []
            for gate in gates:
                automaton = engine.apply_gate(automaton, gate)
                keys.append(automaton.structure_key())
        states[backend_name] = keys
        clear_reduce_cache()
    assert states["reference"] == states[name], f"{name} diverged (seed={seed})"


@pytest.mark.parametrize("name,backend", BACKENDS)
def test_tagged_operands_are_bit_identical(name, backend):
    """Tagged symbols (the composition pipeline's mid-gate automata) conform."""
    base = _stacked(3, 4, seed=21)
    tagged = tag(base)
    product = REFERENCE.binary_operation(tagged, tagged)
    actual = backend.binary_operation(tagged, tagged)
    _assert_identical(product, actual, "tagged product")
    expected_useless = REFERENCE.remove_useless(product)
    actual_useless = backend.remove_useless(actual)
    _assert_identical(expected_useless, actual_useless, "tagged remove_useless")


@pytest.mark.parametrize("name,backend", BACKENDS)
def test_structural_edge_cases(name, backend):
    # a root with no transitions is unproductive: everything is pruned
    empty = TreeAutomaton(2, [0], {}, {})
    _assert_identical(
        REFERENCE.remove_useless(empty), backend.remove_useless(empty), "empty prune"
    )

    # both roots are leaves: the product is a single leaf pair
    leaf = TreeAutomaton(1, [0], {}, {0: ONE})
    expected = REFERENCE.binary_operation(leaf, leaf)
    actual = backend.binary_operation(leaf, leaf)
    _assert_identical(expected, actual, "leaf-only product")

    # single-root single-path automaton
    single = basis_state_ta(3, 5)
    for subtract in (False, True):
        expected = REFERENCE.binary_operation(single, single, subtract)
        actual = backend.binary_operation(single, single, subtract)
        _assert_identical(expected, actual, f"single-path product subtract={subtract}")

    # a subtraction that cancels amplitudes to zero everywhere
    state = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
    automaton = from_quantum_states([state])
    expected = REFERENCE.binary_operation(automaton, automaton, subtract=True)
    actual = backend.binary_operation(automaton, automaton, subtract=True)
    _assert_identical(expected, actual, "self-subtraction")


@pytest.mark.parametrize("name,backend", BACKENDS)
def test_reduce_layered_merges_identically(name, backend):
    """Automata with mergeable siblings reduce to identical results."""
    for seed in range(8):
        base = _stacked(4, 5, seed=seed)
        doubled = REFERENCE.binary_operation(base, base)
        useless_free = REFERENCE.remove_useless(doubled)
        assert useless_free._state_depths() is not None
        expected = REFERENCE.reduce_layered(useless_free)
        actual = backend.reduce_layered(useless_free)
        _assert_identical(expected, actual, f"reduce (seed={seed})")
        assert (expected is useless_free) == (actual is useless_free)


@pytest.mark.parametrize("name,backend", BACKENDS)
def test_reduce_fixpoint_delegates_to_reference(name, backend):
    base = _stacked(3, 3, seed=5)
    expected = REFERENCE.reduce_fixpoint(base)
    actual = backend.reduce_fixpoint(base)
    _assert_identical(expected, actual, "reduce_fixpoint")


# ----------------------------------------------------------- selection logic

class _BrokenBackend(ta_kernel.KernelBackend):
    name = "broken"


def test_get_backend_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        ta_kernel.get_backend("no-such-backend")


def test_set_active_backend_returns_previous_and_restores():
    previous = ta_kernel.set_active_backend("reference")
    try:
        assert ta_kernel.active_backend_name() == "reference"
        restored = ta_kernel.set_active_backend(previous)
        assert restored == "reference"
    finally:
        ta_kernel.set_active_backend(previous)


def test_use_backend_restores_selection():
    before = ta_kernel.active_backend_name()
    with ta_kernel.use_backend("reference") as backend:
        assert backend.name == "reference"
        assert ta_kernel.active_backend_name() == "reference"
    assert ta_kernel.active_backend_name() == before


def test_env_request_degrades_with_warning_when_unavailable(monkeypatch):
    """AUTOQ_REPRO_KERNEL naming an unavailable backend degrades, never breaks."""

    def unavailable():
        raise ImportError("simulated missing dependency")

    monkeypatch.setitem(ta_kernel._FACTORIES, "numpy", unavailable)
    monkeypatch.delitem(ta_kernel._INSTANCES, "numpy", raising=False)
    monkeypatch.setenv(ta_kernel.ENV_VAR, "numpy")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = ta_kernel._detect_default()
    assert backend.name == "reference"
    assert any("not available" in str(w.message) for w in caught)


def test_env_request_unknown_name_degrades_with_warning(monkeypatch):
    monkeypatch.setenv(ta_kernel.ENV_VAR, "fortran")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = ta_kernel._detect_default()
    assert backend.name in ta_kernel.available_backends()
    assert any("names no kernel backend" in str(w.message) for w in caught)


def test_auto_detection_without_numpy_selects_reference(monkeypatch):
    def unavailable():
        raise ImportError("simulated missing dependency")

    monkeypatch.setitem(ta_kernel._FACTORIES, "numpy", unavailable)
    monkeypatch.delitem(ta_kernel._INSTANCES, "numpy", raising=False)
    monkeypatch.delenv(ta_kernel.ENV_VAR, raising=False)
    assert ta_kernel._detect_default().name == "reference"
    assert ta_kernel.available_backends() == ("reference",)


def test_programmatic_selection_of_unavailable_backend_raises(monkeypatch):
    def unavailable():
        raise ImportError("simulated missing dependency")

    monkeypatch.setitem(ta_kernel._FACTORIES, "numpy", unavailable)
    monkeypatch.delitem(ta_kernel._INSTANCES, "numpy", raising=False)
    previous = ta_kernel.active_backend_name()
    with pytest.raises(ImportError):
        ta_kernel.set_active_backend("numpy")
    assert ta_kernel.active_backend_name() == previous


@requires_numpy
def test_session_config_activates_and_restores_backend():
    from repro.api import Session, SessionConfig

    before = ta_kernel.active_backend_name()
    with Session(SessionConfig(kernel_backend="reference")):
        assert ta_kernel.active_backend_name() == "reference"
    assert ta_kernel.active_backend_name() == before


def test_session_config_unknown_backend_raises():
    from repro.api import Session, SessionConfig

    with pytest.raises(ValueError):
        Session(SessionConfig(kernel_backend="no-such-backend"))


@requires_numpy
def test_engine_statistics_record_the_active_backend():
    pre = basis_state_ta(2, 0)
    circuit = random_circuit(num_qubits=2, num_gates=3, seed=3)
    for name in ("reference", "numpy"):
        with ta_kernel.use_backend(name):
            result = CircuitEngine(
                mode=AnalysisMode.HYBRID, runtime=GateRuntime()
            ).run(circuit, pre)
        assert result.statistics.kernel_backend == name
        payload = result.statistics.to_dict()
        assert payload["kernel_backend"] == name
        restored = type(result.statistics).from_dict(payload)
        assert restored.kernel_backend == name


@requires_numpy
def test_default_thresholds_delegate_small_inputs():
    """The production-default vectorized backend answers small inputs via the
    reference code (same output object semantics, no numpy work)."""
    from repro.ta.kernel.vectorized import DEFAULT_THRESHOLDS, VectorizedBackend

    assert set(DEFAULT_THRESHOLDS) == {
        "binary_operation", "remove_useless", "reduce_layered",
    }
    backend = VectorizedBackend()
    small = basis_state_ta(2, 1)
    expected = REFERENCE.binary_operation(small, small)
    actual = backend.binary_operation(small, small)
    _assert_identical(expected, actual, "thresholded small product")
