"""Tests for the TA analysis queries (amplitudes, support, constants, measurement)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, ZERO, AlgebraicNumber
from repro.circuits import Circuit
from repro.core import (
    amplitudes_at_basis,
    constant_output,
    measurement_probability_bounds,
    outcome_is_certain,
    possible_support,
    post_measurement_automaton,
    run_circuit,
    zero_state_precondition,
)
from repro.simulator import StateVectorSimulator
from repro.simulator.measurement import collapse, measurement_probability
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_state_ta,
    check_equivalence,
    from_quantum_state,
    from_quantum_states,
)

HALF_SQRT = AlgebraicNumber(1, 0, 0, 0, 1)  # 1/sqrt(2)


def _bell_output():
    circuit = Circuit(2, name="epr").add("h", 0).add("cx", 0, 1)
    return run_circuit(circuit, zero_state_precondition(2)).output


# --------------------------------------------------------------------------- amplitudes_at_basis
def test_amplitudes_at_basis_single_state():
    automaton = basis_state_ta(3, "101")
    assert amplitudes_at_basis(automaton, "101") == frozenset({ONE})
    assert amplitudes_at_basis(automaton, "000") == frozenset({ZERO})


def test_amplitudes_at_basis_over_all_basis_states():
    automaton = all_basis_states_ta(2)
    # at any position, some accepted state has amplitude 1 and another has 0
    assert amplitudes_at_basis(automaton, "00") == frozenset({ZERO, ONE})
    assert amplitudes_at_basis(automaton, "11") == frozenset({ZERO, ONE})


def test_amplitudes_at_basis_of_bell_output():
    output = _bell_output()
    assert amplitudes_at_basis(output, "00") == frozenset({HALF_SQRT})
    assert amplitudes_at_basis(output, "11") == frozenset({HALF_SQRT})
    assert amplitudes_at_basis(output, "01") == frozenset({ZERO})


def test_amplitudes_at_basis_accepts_integer_indices():
    automaton = basis_state_ta(2, 2)
    assert amplitudes_at_basis(automaton, 2) == frozenset({ONE})


# --------------------------------------------------------------------------- possible_support
def test_possible_support_single_basis_state():
    automaton = basis_state_ta(3, "010")
    assert possible_support(automaton) == frozenset({(0, 1, 0)})


def test_possible_support_of_bell_output():
    assert possible_support(_bell_output()) == frozenset({(0, 0), (1, 1)})


def test_possible_support_union_over_language():
    states = [QuantumState.basis_state(3, index) for index in (1, 4)]
    automaton = from_quantum_states(states)
    assert possible_support(automaton) == frozenset({(0, 0, 1), (1, 0, 0)})


def test_possible_support_respects_limit():
    with pytest.raises(ValueError):
        possible_support(all_basis_states_ta(4), limit=3)


# --------------------------------------------------------------------------- constant_output
def test_constant_output_of_singleton_language():
    state = QuantumState.basis_state(2, 3)
    assert constant_output(from_quantum_state(state)) == state


def test_constant_output_none_for_larger_language():
    assert constant_output(all_basis_states_ta(2)) is None


def test_bv_like_circuit_is_constant_over_single_input():
    circuit = Circuit(2).add("x", 0).add("cx", 0, 1)
    output = run_circuit(circuit, zero_state_precondition(2)).output
    assert constant_output(output) == QuantumState.basis_state(2, "11")


def test_cx_is_not_constant_over_all_basis_inputs():
    circuit = Circuit(2).add("cx", 0, 1)
    output = run_circuit(circuit, all_basis_states_ta(2)).output
    assert constant_output(output) is None


# --------------------------------------------------------------------------- outcome certainty
def test_outcome_certain_for_basis_state():
    automaton = basis_state_ta(3, "110")
    assert outcome_is_certain(automaton, 0, 1)
    assert outcome_is_certain(automaton, 1, 1)
    assert outcome_is_certain(automaton, 2, 0)
    assert not outcome_is_certain(automaton, 0, 0)


def test_outcome_not_certain_after_hadamard():
    circuit = Circuit(1).add("h", 0)
    output = run_circuit(circuit, zero_state_precondition(1)).output
    assert not outcome_is_certain(output, 0, 0)
    assert not outcome_is_certain(output, 0, 1)


def test_outcome_certain_on_ancilla_of_bell_circuit():
    # |0> ancilla untouched by the circuit stays |0> with certainty
    circuit = Circuit(3).add("h", 0).add("cx", 0, 1)
    output = run_circuit(circuit, zero_state_precondition(3)).output
    assert outcome_is_certain(output, 2, 0)
    assert not outcome_is_certain(output, 0, 0)


def test_outcome_certainty_rejects_bad_value():
    with pytest.raises(ValueError):
        outcome_is_certain(basis_state_ta(1, 0), 0, 2)


def test_outcome_certainty_over_mixed_language():
    states = [QuantumState.basis_state(2, "10"), QuantumState.basis_state(2, "11")]
    automaton = from_quantum_states(states)
    assert outcome_is_certain(automaton, 0, 1)      # first qubit is 1 in every state
    assert not outcome_is_certain(automaton, 1, 0)  # second qubit varies


# --------------------------------------------------------------------------- probability bounds
def test_probability_bounds_of_bell_output():
    low, high = measurement_probability_bounds(_bell_output(), 0, 0)
    assert low == pytest.approx(0.5)
    assert high == pytest.approx(0.5)


def test_probability_bounds_over_all_basis_states():
    low, high = measurement_probability_bounds(all_basis_states_ta(2), 0, 0)
    assert low == pytest.approx(0.0)
    assert high == pytest.approx(1.0)


def test_probability_bounds_raise_on_empty_language():
    from repro.ta.automaton import TreeAutomaton

    with pytest.raises(ValueError):
        measurement_probability_bounds(TreeAutomaton(1, set(), {}, {}), 0, 0)


def test_probability_bounds_match_simulator(simulator):
    circuit = Circuit(2).add("h", 0).add("t", 0).add("cx", 0, 1)
    output = run_circuit(circuit, zero_state_precondition(2)).output
    state = simulator.run(circuit, QuantumState.zero_state(2))
    low, high = measurement_probability_bounds(output, 1, 1)
    assert low == pytest.approx(measurement_probability(state, 1, 1))
    assert high == pytest.approx(low)


# --------------------------------------------------------------------------- post-measurement TA
def test_post_measurement_of_bell_output_keeps_one_branch():
    collapsed = post_measurement_automaton(_bell_output(), 0, 0)
    expected = QuantumState(2, {(0, 0): HALF_SQRT})
    assert check_equivalence(collapsed, from_quantum_state(expected)).equivalent


def test_post_measurement_matches_unnormalised_collapse(simulator):
    circuit = Circuit(2).add("h", 0).add("cx", 0, 1).add("t", 1)
    output = run_circuit(circuit, zero_state_precondition(2)).output
    collapsed_ta = post_measurement_automaton(output, 1, 1)
    state = simulator.run(circuit, QuantumState.zero_state(2))
    unnormalised = QuantumState(
        2, {bits: amp for bits, amp in state.items() if bits[1] == 1}
    )
    assert check_equivalence(collapsed_ta, from_quantum_state(unnormalised)).equivalent


def test_post_measurement_rejects_bad_outcome():
    with pytest.raises(ValueError):
        post_measurement_automaton(basis_state_ta(1, 0), 0, 5)


def test_post_measurement_then_certainty():
    collapsed = post_measurement_automaton(_bell_output(), 0, 1)
    assert outcome_is_certain(collapsed, 1, 1)


# --------------------------------------------------------------------------- property-based
@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=2))
def test_property_amplitude_query_matches_enumeration(index, qubit):
    num_qubits = 3
    states = [
        QuantumState.basis_state(num_qubits, index),
        QuantumState.basis_state(num_qubits, (index + 3) % 8),
    ]
    automaton = from_quantum_states(states)
    for position in range(1 << num_qubits):
        expected = frozenset(state[position] for state in states)
        assert amplitudes_at_basis(automaton, position) == expected
    # certainty agrees with a direct check over the enumerated states
    for value in (0, 1):
        brute = all(
            all(bits[qubit] == value for bits, amp in state.items() if not amp.is_zero())
            for state in states
        )
        assert outcome_is_certain(automaton, qubit, value) == brute
