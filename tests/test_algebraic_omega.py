"""Unit and property tests for the algebraic amplitude ring (a, b, c, d, k)."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import OMEGA, ONE, SQRT2_INV, ZERO, AlgebraicNumber

OMEGA_COMPLEX = cmath.exp(1j * math.pi / 4)


def algebraic_numbers(max_coeff: int = 6, max_k: int = 6):
    """Hypothesis strategy for algebraic numbers with small coefficients."""
    coefficient = st.integers(min_value=-max_coeff, max_value=max_coeff)
    return st.builds(
        AlgebraicNumber,
        coefficient,
        coefficient,
        coefficient,
        coefficient,
        st.integers(min_value=0, max_value=max_k),
    )


class TestConstruction:
    def test_zero_is_canonical(self):
        assert AlgebraicNumber(0, 0, 0, 0, 7) == ZERO
        assert AlgebraicNumber(0, 0, 0, 0, 7).as_tuple() == (0, 0, 0, 0, 0)

    def test_zero_truthiness(self):
        assert not ZERO
        assert ONE
        assert ZERO.is_zero()
        assert not ONE.is_zero()

    def test_one_and_omega_values(self):
        assert ONE.to_complex() == pytest.approx(1.0)
        assert OMEGA.to_complex() == pytest.approx(OMEGA_COMPLEX)
        assert SQRT2_INV.to_complex() == pytest.approx(1 / math.sqrt(2))

    def test_negative_exponent_is_lifted(self):
        sqrt2 = AlgebraicNumber(1, 0, 0, 0, -1)
        assert sqrt2.to_complex() == pytest.approx(math.sqrt(2))
        assert sqrt2.k >= 0

    def test_canonical_form_reduces_exponent(self):
        # 2 / 2 == 1, expressed as (2,0,0,0,2)
        assert AlgebraicNumber(2, 0, 0, 0, 2) == ONE
        assert AlgebraicNumber(2, 0, 0, 0, 2).as_tuple() == ONE.as_tuple()

    def test_equal_values_have_equal_hash(self):
        left = AlgebraicNumber(1, 0, 1, 0, 2)   # (1 + i)/2
        right = AlgebraicNumber(0, 1, 0, 0, 1)  # w / sqrt(2) == (1 + i)/2
        assert left.to_complex() == pytest.approx(right.to_complex())
        assert left == right
        assert hash(left) == hash(right)


class TestArithmetic:
    def test_omega_powers(self):
        assert OMEGA * OMEGA * OMEGA * OMEGA == AlgebraicNumber(-1, 0, 0, 0, 0)
        assert AlgebraicNumber.omega_power(8) == ONE
        assert AlgebraicNumber.omega_power(2).to_complex() == pytest.approx(1j)

    def test_times_omega_is_circular_shift(self):
        value = AlgebraicNumber(1, 2, 3, 4, 5)
        assert value.times_omega() == AlgebraicNumber(-4, 1, 2, 3, 5)
        assert value.times_omega(8) == value

    def test_times_sqrt2_inv(self):
        assert ONE.times_sqrt2_inv(2).to_complex() == pytest.approx(0.5)
        assert ZERO.times_sqrt2_inv(3) == ZERO

    def test_addition_with_different_exponents(self):
        half = SQRT2_INV * SQRT2_INV
        assert half + half == ONE
        assert SQRT2_INV + SQRT2_INV == AlgebraicNumber(1, 0, 0, 0, -1)  # sqrt(2)

    def test_subtraction_and_negation(self):
        assert ONE - ONE == ZERO
        assert -(ONE - OMEGA) == OMEGA - ONE

    def test_conjugate(self):
        assert OMEGA.conjugate().to_complex() == pytest.approx(OMEGA_COMPLEX.conjugate())
        assert ONE.conjugate() == ONE

    def test_abs_squared_of_normalised_amplitude(self):
        amplitude = SQRT2_INV
        assert amplitude.abs_squared().to_complex() == pytest.approx(0.5)

    def test_multiplication_by_int(self):
        assert (ONE * 3).to_complex() == pytest.approx(3.0)
        assert (3 * OMEGA).to_complex() == pytest.approx(3 * OMEGA_COMPLEX)

    def test_to_float_rejects_imaginary(self):
        with pytest.raises(ValueError):
            OMEGA.to_float()
        assert ONE.to_float() == pytest.approx(1.0)

    def test_str_and_repr_do_not_crash(self):
        for value in (ZERO, ONE, OMEGA, SQRT2_INV, AlgebraicNumber(-1, 2, 0, -3, 4)):
            assert isinstance(str(value), str)
            assert "AlgebraicNumber" in repr(value)


class TestRingProperties:
    @given(algebraic_numbers(), algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_addition_matches_complex(self, left, right):
        assert (left + right).to_complex() == pytest.approx(
            left.to_complex() + right.to_complex(), abs=1e-9
        )

    @given(algebraic_numbers(), algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_multiplication_matches_complex(self, left, right):
        assert (left * right).to_complex() == pytest.approx(
            left.to_complex() * right.to_complex(), abs=1e-9
        )

    @given(algebraic_numbers(), algebraic_numbers(), algebraic_numbers())
    @settings(max_examples=60, deadline=None)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(algebraic_numbers(), algebraic_numbers())
    @settings(max_examples=60, deadline=None)
    def test_commutativity(self, a, b):
        assert a + b == b + a
        assert a * b == b * a

    @given(algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_additive_inverse(self, value):
        assert value + (-value) == ZERO

    @given(algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_canonical_form_is_stable(self, value):
        rebuilt = AlgebraicNumber(*value.as_tuple())
        assert rebuilt == value
        assert rebuilt.as_tuple() == value.as_tuple()

    @given(algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_conjugate_involution(self, value):
        assert value.conjugate().conjugate() == value

    @given(algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_abs_squared_is_real_and_non_negative(self, value):
        squared = value.abs_squared().to_complex()
        assert abs(squared.imag) < 1e-9
        assert squared.real >= -1e-9

    @given(algebraic_numbers())
    @settings(max_examples=100, deadline=None)
    def test_omega_multiplication_agrees_with_times_omega(self, value):
        assert value * OMEGA == value.times_omega()
