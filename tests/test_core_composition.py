"""Tests for the composition-based gate encoding (Section 6, Theorems 6.6 - 6.12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import AlgebraicNumber, ONE, SQRT2_INV, ZERO
from repro.circuits import Gate
from repro.core.composition import (
    apply_composition_gate,
    backward_swap,
    binary_operation,
    forward_swap,
    multiply,
    projection,
    restrict,
    subtree_copy,
)
from repro.core.formulas import apply_gate_to_state
from repro.core.tagging import tag, untag
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    check_equivalence,
    from_quantum_state,
    from_quantum_states,
)

ALL_GATE_KINDS = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry"]


def expected_automaton(automaton, gate):
    states = automaton.enumerate_states(limit=64)
    return from_quantum_states([apply_gate_to_state(gate, s) for s in states])


def plus_state() -> QuantumState:
    return QuantumState(2, {(0, 0): SQRT2_INV, (1, 0): SQRT2_INV})


class TestTagging:
    def test_tagging_assigns_unique_tags(self):
        tagged = tag(all_basis_states_ta(3))
        tags = [symbol[1] for _p, symbol, _l, _r in tagged.transitions()]
        assert all(len(t) == 1 for t in tags)
        assert len(set(tags)) == len(tags)

    def test_tagging_twice_rejected(self):
        tagged = tag(all_basis_states_ta(2))
        with pytest.raises(ValueError):
            tag(tagged)

    def test_untag_restores_plain_symbols(self):
        automaton = all_basis_states_ta(3)
        assert check_equivalence(untag(tag(automaton)), automaton).equivalent

    def test_tagging_preserves_language(self):
        automaton = basis_product_ta(3, [{0, 1}, {1}, {0, 1}])
        assert check_equivalence(untag(tag(automaton)), automaton).equivalent


class TestRestriction:
    """Theorem 6.6: Res zeroes the branch selected by the bit."""

    def test_restrict_single_state(self):
        automaton = tag(from_quantum_state(plus_state()))
        kept_one = untag(restrict(automaton, 0, 1))
        states = kept_one.enumerate_states()
        assert len(states) == 1
        assert states[0][(1, 0)] == SQRT2_INV and states[0][(0, 0)] == ZERO

    def test_restrict_keeps_zero_branch(self):
        automaton = tag(from_quantum_state(plus_state()))
        kept_zero = untag(restrict(automaton, 0, 0))
        states = kept_zero.enumerate_states()
        assert states[0][(0, 0)] == SQRT2_INV and states[0][(1, 0)] == ZERO

    def test_restrict_set_semantics(self):
        # Theorem 6.6: L(Res(A, x_1, 1)) = { B_{x_1} . T | T in L(A) } — as a set,
        # every basis state with the qubit at 0 collapses to the all-zero function.
        automaton = tag(all_basis_states_ta(3))
        restricted = untag(restrict(automaton, 1, 1))
        results = restricted.enumerate_states()
        assert len(results) == 5
        assert QuantumState(3) in results  # the all-zero function
        assert QuantumState.basis_state(3, "011") in results
        assert QuantumState.basis_state(3, "001") not in results


class TestMultiplication:
    """Theorem 6.7: Mult scales every amplitude."""

    def test_multiply_by_omega(self):
        automaton = tag(basis_state_ta(2, "01"))
        scaled = untag(multiply(automaton, AlgebraicNumber(0, 1, 0, 0, 0)))
        states = scaled.enumerate_states()
        assert states[0]["01"] == AlgebraicNumber(0, 1, 0, 0, 0)

    def test_multiply_by_inverse_sqrt2(self):
        automaton = tag(basis_state_ta(2, "11"))
        scaled = untag(multiply(automaton, SQRT2_INV))
        assert scaled.enumerate_states()[0]["11"] == SQRT2_INV


class TestSwapsAndProjection:
    def test_forward_then_backward_swap_is_identity_on_language(self):
        automaton = tag(all_basis_states_ta(3))
        swapped = forward_swap(automaton, 0)
        restored = backward_swap(swapped, 0)
        assert check_equivalence(untag(restored), untag(automaton)).equivalent

    def test_forward_swap_at_leaf_layer_rejected(self):
        automaton = tag(all_basis_states_ta(2))
        with pytest.raises(ValueError):
            forward_swap(automaton, 1)  # qubit 1 sits directly above the leaves

    def test_subtree_copy_at_bottom_layer(self):
        automaton = tag(from_quantum_state(QuantumState.basis_state(2, "01")))
        copied = untag(subtree_copy(automaton, 1, 1))
        states = copied.enumerate_states()
        assert states[0][(0, 0)] == ONE and states[0][(0, 1)] == ONE

    @pytest.mark.parametrize("qubit,bit", [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)])
    def test_projection_matches_tree_semantics(self, qubit, bit):
        state = QuantumState(
            3,
            {
                (0, 0, 1): ONE,
                (1, 0, 1): AlgebraicNumber(0, 1, 0, 0, 0),
                (1, 1, 0): SQRT2_INV,
            },
        )
        automaton = tag(from_quantum_state(state))
        projected = untag(projection(automaton, qubit, bit)).reduce()
        expected = QuantumState(3)
        import itertools

        for bits in itertools.product((0, 1), repeat=3):
            source = list(bits)
            source[qubit] = bit
            expected[bits] = state[tuple(source)]
        assert check_equivalence(projected, from_quantum_state(expected)).equivalent

    def test_projection_on_a_set_of_states(self):
        automaton = tag(all_basis_states_ta(3))
        projected = untag(projection(automaton, 0, 1)).reduce()
        expected_states = []
        import itertools

        for index in range(8):
            state = QuantumState.basis_state(3, index)
            result = QuantumState(3)
            for bits in itertools.product((0, 1), repeat=3):
                source = (1,) + bits[1:]
                result[bits] = state[source]
            expected_states.append(result)
        assert check_equivalence(projected, from_quantum_states(expected_states)).equivalent


class TestBinaryOperation:
    """Theorem 6.12: Bin combines only trees with equal tags."""

    def test_sum_of_projections_reconstructs_x_gate(self):
        # X(T) = B_{x̄} T_x + B_x T_x̄ on a single state
        state = plus_state()
        tagged = tag(from_quantum_state(state))
        term1 = restrict(projection(tagged, 0, 1), 0, 0)
        term2 = restrict(projection(tagged, 0, 0), 0, 1)
        combined = untag(binary_operation(term1, term2))
        expected = from_quantum_state(apply_gate_to_state(Gate("x", (0,)), state))
        assert check_equivalence(combined, expected).equivalent

    def test_subtraction(self):
        automaton = tag(basis_state_ta(2, "00"))
        difference = untag(binary_operation(automaton, automaton, subtract=True))
        states = difference.enumerate_states()
        assert len(states) == 1
        assert states[0].nonzero_count() == 0

    def test_tags_prevent_cross_pairing(self):
        # two different basis states: Bin must pair each with itself, not cross-pair
        automaton = tag(from_quantum_states(
            [QuantumState.basis_state(2, "00"), QuantumState.basis_state(2, "11")], reduce=False
        ))
        doubled = untag(binary_operation(automaton, automaton))
        two = AlgebraicNumber(2, 0, 0, 0, 0)
        expected = from_quantum_states(
            [
                QuantumState(2, {(0, 0): two}),
                QuantumState(2, {(1, 1): two}),
            ]
        )
        assert check_equivalence(doubled, expected).equivalent

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            binary_operation(tag(basis_state_ta(2, "00")), tag(basis_state_ta(3, "000")))


class TestFullGateApplication:
    @pytest.mark.parametrize("kind", ALL_GATE_KINDS)
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_all_single_qubit_gates_on_basis_sets(self, kind, target):
        automaton = all_basis_states_ta(3)
        gate = Gate(kind, (target,))
        result = apply_composition_gate(automaton, gate).reduce()
        assert check_equivalence(result, expected_automaton(automaton, gate)).equivalent

    @pytest.mark.parametrize("gate", [
        Gate("cx", (0, 1)), Gate("cx", (1, 0)), Gate("cz", (1, 0)),
        Gate("ccx", (0, 1, 2)), Gate("ccx", (2, 1, 0)),
    ])
    def test_controlled_gates_any_orientation(self, gate):
        automaton = all_basis_states_ta(3)
        result = apply_composition_gate(automaton, gate).reduce()
        assert check_equivalence(result, expected_automaton(automaton, gate)).equivalent

    def test_result_is_untagged(self):
        automaton = all_basis_states_ta(2)
        result = apply_composition_gate(automaton, Gate("h", (0,)))
        assert not result.is_tagged()

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_composition_agrees_with_permutation_where_both_apply(self, seed):
        import random

        from repro.core.permutation import apply_permutation_gate, supports_permutation

        rng = random.Random(seed)
        num_qubits = rng.randint(2, 4)
        allowed = [rng.choice([{0}, {1}, {0, 1}]) for _ in range(num_qubits)]
        automaton = basis_product_ta(num_qubits, allowed)
        kind = rng.choice(["x", "y", "z", "s", "t", "cx", "cz", "ccx"])
        arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
        if arity > num_qubits:
            kind, arity = "z", 1
        qubits = tuple(sorted(rng.sample(range(num_qubits), arity)))
        gate = Gate(kind, qubits)
        assert supports_permutation(gate)
        via_permutation = apply_permutation_gate(automaton, gate).reduce()
        via_composition = apply_composition_gate(automaton, gate).reduce()
        assert check_equivalence(via_permutation, via_composition).equivalent


class TestRestrictFusion:
    """PR-3 regression: Res must build only the zeroed subtrees it redirects,
    not a full offset-shifted copy of the automaton."""

    def test_restrict_no_full_copy_blowup(self):
        automaton = tag(all_basis_states_ta(8))
        # restricting the LAST qubit redirects only leaf children, so the
        # result may add at most the leaf layer again — a full copy would
        # roughly double the state count
        restricted = restrict(automaton, 7, 1)
        assert restricted.num_states <= automaton.num_states + len(automaton.leaves) + 1

    def test_restrict_result_needs_no_pruning(self):
        automaton = tag(all_basis_states_ta(5))
        for qubit in range(5):
            restricted = restrict(automaton, qubit, 1)
            # every state of the fused construction is reachable and
            # productive: remove_useless must be the identity
            assert restricted.remove_useless() is restricted

    def test_restrict_midlevel_copies_only_the_lower_subtree(self):
        automaton = tag(all_basis_states_ta(6))
        restricted = restrict(automaton, 3, 0)
        # only states strictly below qubit 3 may be duplicated
        below = {
            state for state, depth in automaton._state_depths().items() if depth > 3
        }
        assert restricted.num_states <= automaton.num_states + len(below)
        kept_one = untag(restricted)
        assert kept_one.num_qubits == 6


class TestBinaryOperationProduct:
    """The worklist product must stay pruned without a post-hoc pass."""

    def test_tight_product_needs_no_pruning(self):
        tagged = tag(all_basis_states_ta(4))
        left = restrict(tagged, 0, 1)
        right = restrict(tagged, 0, 0)
        product = binary_operation(left, right)
        assert product.remove_useless() is product

    def test_product_prunes_dead_pairs(self):
        # operands with disjoint tags produce only dead pairs below the roots
        first = tag(all_basis_states_ta(2))
        second = tag(all_basis_states_ta(2))
        shifted = second.shifted(first.next_free_state())
        product = binary_operation(first, shifted)
        # no matching root tags -> empty language, and no dangling states
        assert product.is_empty() or product.remove_useless() is product
