"""Tests for the circuit execution engine (Hybrid / Composition / Permutation modes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, Gate, random_circuit
from repro.core.engine import AnalysisMode, CircuitEngine, run_circuit
from repro.core.formulas import apply_gate_to_state
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState
from repro.ta import basis_product_ta, basis_state_ta, check_equivalence, from_quantum_state, from_quantum_states


def reference_output(circuit, input_states):
    simulator = StateVectorSimulator()
    return from_quantum_states([simulator.run(circuit, state) for state in input_states])


class TestEngineConfiguration:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CircuitEngine(mode="turbo")

    def test_width_mismatch_rejected(self):
        engine = CircuitEngine()
        with pytest.raises(ValueError):
            engine.run(Circuit(3).add("h", 0), basis_state_ta(2, "00"))

    def test_swap_must_be_decomposed_for_apply_gate(self):
        engine = CircuitEngine()
        with pytest.raises(ValueError):
            engine.apply_gate(basis_state_ta(2, "00"), Gate("swap", (0, 1)))

    def test_run_accepts_swap_via_decomposition(self):
        circuit = Circuit(2).add("swap", 0, 1)
        result = run_circuit(circuit, basis_state_ta(2, "01"))
        assert result.output.accepts(QuantumState.basis_state(2, "10"))

    def test_permutation_mode_rejects_hadamard(self):
        from repro.core.permutation import PermutationUnsupported

        engine = CircuitEngine(mode=AnalysisMode.PERMUTATION)
        with pytest.raises(PermutationUnsupported):
            engine.run(Circuit(2).add("h", 0), basis_state_ta(2, "00"))


class TestStatistics:
    def test_statistics_counts_gate_kinds(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1).add("t", 1)
        result = run_circuit(circuit, basis_state_ta(2, "00"), mode=AnalysisMode.HYBRID)
        stats = result.statistics
        assert stats.gates_total == 3
        assert stats.gates_permutation == 2  # cx and t
        assert stats.gates_composition == 1  # h
        assert len(stats.per_gate_seconds) == 3
        assert stats.max_states >= 1
        assert stats.analysis_seconds >= 0

    def test_composition_mode_uses_composition_for_everything(self):
        circuit = Circuit(2).add("x", 0).add("cx", 0, 1)
        result = run_circuit(circuit, basis_state_ta(2, "00"), mode=AnalysisMode.COMPOSITION)
        assert result.statistics.gates_composition == 2
        assert result.statistics.gates_permutation == 0

    def test_mode_is_recorded(self):
        result = run_circuit(Circuit(2).add("x", 0), basis_state_ta(2, "00"))
        assert result.mode == AnalysisMode.HYBRID

    def test_timing_accessors(self):
        from repro.core.engine import EngineStatistics

        stats = EngineStatistics()
        automaton = basis_state_ta(2, "00")
        for elapsed in (0.4, 0.1, 0.3, 0.2):
            stats.record(automaton, elapsed, used_permutation=True)
        assert stats.total_gate_seconds == pytest.approx(1.0)
        assert stats.mean_gate_seconds == pytest.approx(0.25)
        assert stats.percentile_gate_seconds(0) == pytest.approx(0.1)
        assert stats.percentile_gate_seconds(50) == pytest.approx(0.2)
        assert stats.percentile_gate_seconds(90) == pytest.approx(0.4)
        assert stats.percentile_gate_seconds(100) == pytest.approx(0.4)

    def test_percentile_exact_integer_ranks_do_not_overshoot(self):
        from repro.core.engine import EngineStatistics

        stats = EngineStatistics()
        automaton = basis_state_ta(2, "00")
        for value in range(1, 101):  # samples 0.01 .. 1.00
            stats.record(automaton, value / 100.0, used_permutation=True)
        # 55/100.0*100 floats to 55.000...01; the rank math must not overshoot
        for percentile in (7, 14, 28, 55, 56):
            assert stats.percentile_gate_seconds(percentile) == pytest.approx(percentile / 100.0)

    def test_timing_accessors_on_empty_statistics(self):
        from repro.core.engine import EngineStatistics

        stats = EngineStatistics()
        assert stats.total_gate_seconds == 0.0
        assert stats.mean_gate_seconds == 0.0
        assert stats.percentile_gate_seconds(50) == 0.0

    def test_percentile_range_is_validated(self):
        from repro.core.engine import EngineStatistics

        with pytest.raises(ValueError):
            EngineStatistics().percentile_gate_seconds(101)
        with pytest.raises(ValueError):
            EngineStatistics().percentile_gate_seconds(-1)

    def test_to_dict_is_json_ready(self):
        import json

        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        result = run_circuit(circuit, basis_state_ta(2, "00"))
        payload = result.statistics.to_dict()
        assert payload["gates_total"] == 2
        assert payload["gates_permutation"] == 1
        assert payload["gates_composition"] == 1
        assert payload["total_gate_seconds"] == pytest.approx(
            result.statistics.analysis_seconds
        )
        assert payload["p50_gate_seconds"] <= payload["p90_gate_seconds"] <= payload["max_gate_seconds"]
        assert "per_gate_seconds" not in payload
        json.dumps(payload)  # must round-trip through JSON for the campaign report


class TestEngineCorrectness:
    def test_epr_circuit_produces_bell_state(self, epr_circuit, simulator):
        result = run_circuit(epr_circuit, basis_state_ta(2, "00"))
        expected = simulator.run(epr_circuit, QuantumState.zero_state(2))
        assert result.output.accepts(expected)
        assert len(result.output.enumerate_states()) == 1

    def test_ghz_circuit(self, ghz_circuit, simulator):
        result = run_circuit(ghz_circuit, basis_state_ta(3, "000"))
        expected = simulator.run(ghz_circuit, QuantumState.zero_state(3))
        assert check_equivalence(result.output, from_quantum_state(expected)).equivalent

    def test_hybrid_falls_back_for_reversed_cnot(self, simulator):
        circuit = Circuit(2).add("x", 1).add("cx", 1, 0)  # control below target
        result = run_circuit(circuit, basis_state_ta(2, "00"))
        expected = simulator.run(circuit, QuantumState.zero_state(2))
        assert result.output.accepts(expected)
        assert result.statistics.gates_composition >= 1

    def test_no_reduction_option_gives_same_language(self):
        circuit = random_circuit(3, num_gates=8, seed=5)
        reduced = run_circuit(circuit, basis_state_ta(3, "000"), reduce_after_each_gate=True)
        unreduced = run_circuit(circuit, basis_state_ta(3, "000"), reduce_after_each_gate=False)
        assert check_equivalence(reduced.output, unreduced.output).equivalent

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_hybrid_matches_simulator_on_random_circuits(self, seed):
        import random

        rng = random.Random(seed)
        num_qubits = rng.randint(2, 4)
        circuit = random_circuit(num_qubits, num_gates=10, seed=seed)
        allowed = [rng.choice([{0}, {1}, {0, 1}]) for _ in range(num_qubits)]
        inputs = basis_product_ta(num_qubits, allowed)
        input_states = inputs.enumerate_states()
        result = run_circuit(circuit, inputs, mode=AnalysisMode.HYBRID)
        assert check_equivalence(result.output, reference_output(circuit, input_states)).equivalent

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=8, deadline=None)
    def test_composition_matches_simulator_on_random_circuits(self, seed):
        circuit = random_circuit(3, num_gates=8, seed=seed)
        inputs = basis_state_ta(3, "000")
        result = run_circuit(circuit, inputs, mode=AnalysisMode.COMPOSITION)
        expected = reference_output(circuit, [QuantumState.zero_state(3)])
        assert check_equivalence(result.output, expected).equivalent

    def test_hybrid_and_composition_agree(self):
        circuit = random_circuit(3, num_gates=12, seed=77)
        inputs = basis_product_ta(3, [{0, 1}, {0}, {0, 1}])
        hybrid = run_circuit(circuit, inputs, mode=AnalysisMode.HYBRID)
        composition = run_circuit(circuit, inputs, mode=AnalysisMode.COMPOSITION)
        assert check_equivalence(hybrid.output, composition.output).equivalent


class TestPhaseTimings:
    """PR-3: the engine records per-phase wall-clock, not just per-gate."""

    def test_hybrid_run_records_phases(self):
        from repro.core.engine import clear_gate_cache

        clear_gate_cache()  # a memo hit would skip the phases entirely
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1).add("t", 1)
        result = run_circuit(circuit, basis_state_ta(2, "00"))
        phases = result.statistics.phase_seconds
        # H goes through the composition pipeline, CX/T through permutation,
        # and every gate is reduced afterwards
        for name in ("tag", "terms", "bin", "untag", "permutation", "reduce"):
            assert name in phases, f"missing phase {name!r} in {sorted(phases)}"
            assert phases[name] >= 0.0
        assert "phase_seconds" in result.statistics.to_dict()

    def test_phase_total_is_bounded_by_analysis_time(self):
        from repro.core.engine import clear_gate_cache

        clear_gate_cache()
        circuit = Circuit(3).add("h", 0).add("cx", 0, 1).add("ccx", 0, 1, 2)
        result = run_circuit(circuit, basis_state_ta(3, "000"))
        statistics = result.statistics
        assert sum(statistics.phase_seconds.values()) <= statistics.analysis_seconds + 1e-6


class TestGateApplicationCache:
    """PR-3: repeated (automaton, gate) pairs are memoised per process."""

    def test_identical_applications_hit_the_cache(self):
        from repro.core.engine import clear_gate_cache, gate_cache_stats

        clear_gate_cache()
        engine = CircuitEngine(mode=AnalysisMode.HYBRID)
        automaton = basis_state_ta(2, "00")
        gate = Gate("h", (0,))
        first = engine.apply_gate(automaton, gate)
        assert gate_cache_stats()["hits"] == 0
        second = engine.apply_gate(basis_state_ta(2, "00"), gate)
        assert gate_cache_stats()["hits"] == 1
        assert second is first  # the memo returns the shared reduced instance

    def test_cache_respects_engine_settings(self):
        from repro.core.engine import clear_gate_cache, gate_cache_stats

        clear_gate_cache()
        automaton = basis_state_ta(2, "00")
        gate = Gate("h", (0,))
        hybrid = CircuitEngine(mode=AnalysisMode.HYBRID).apply_gate(automaton, gate)
        composition = CircuitEngine(mode=AnalysisMode.COMPOSITION).apply_gate(automaton, gate)
        assert gate_cache_stats()["hits"] == 0  # different mode -> different key
        assert check_equivalence(hybrid, composition).equivalent

    def test_cached_result_is_correct_across_inputs(self):
        from repro.core.engine import clear_gate_cache

        clear_gate_cache()
        engine = CircuitEngine(mode=AnalysisMode.HYBRID)
        gate = Gate("h", (1,))
        for bits in ("00", "01", "10", "11", "00"):
            output = engine.apply_gate(basis_state_ta(2, bits), gate)
            expected = from_quantum_state(
                apply_gate_to_state(gate, QuantumState.basis_state(2, bits))
            )
            assert check_equivalence(output, expected).equivalent
