"""Tests for the differential fuzzing engine and the regression corpus.

Covers every layer of :mod:`repro.fuzz`:

* **generators** — the case streams are deterministic under their seed;
* **oracles** — the cross-mode and boolean oracles pass on a healthy tree,
  and *catch* deliberately broken engines (a boolean ``complement`` whose
  final-state set is flipped, a permutation kernel that drops ``z`` gates)
  injected via monkeypatching;
* **shrink** — greedy minimization preserves the divergence predicate;
* **corpus** — content-addressed entries round-trip through the versioned
  schema, duplicate finds are idempotent, malformed entries raise;
* **driver** — budgeted runs, corpus writing, replay as a regression gate
  (including the campaign ``--corpus`` gate), and the memo-poisoning
  guarantee: a broken fuzz run must not contaminate later healthy replays;
* the ``FuzzProblem``/``FuzzResult`` API surface and the ``fuzz`` CLI.
"""

from __future__ import annotations

import json

import pytest

import repro.core.engine as engine_module
import repro.ta.boolean as boolean_module
from repro.api import FuzzProblem, FuzzResult, Problem, Result, Session
from repro.circuits import Circuit
from repro.circuits.qasm import to_qasm
from repro.cli import main as cli_main
from repro.fuzz.corpus import Corpus, CorpusError, entry_id
from repro.fuzz.driver import FuzzSettings, replay_corpus, run_fuzz
from repro.fuzz.generators import generate_boolean_cases, generate_cases
from repro.fuzz.oracles import boolean_oracle, cross_mode_oracle, static_prefilter
from repro.fuzz.shrink import shrink_circuit, shrink_states
from repro.states import QuantumState
from repro.ta.construction import from_quantum_states


@pytest.fixture
def broken_complement(monkeypatch):
    """Emulate a complement whose final-state set was flipped instead of built
    by subset construction: the language becomes the *completion* of L(A)
    rather than its complement — exactly ``complement(complement(A))``."""
    real = boolean_module.complement

    def flipped(automaton, alphabet=None):
        return real(real(automaton, alphabet), alphabet)

    monkeypatch.setattr(boolean_module, "complement", flipped)
    return flipped


@pytest.fixture
def broken_permutation_engine(monkeypatch):
    """A permutation kernel that silently drops ``z`` gates."""
    real = engine_module.apply_permutation_gate

    def dropped(automaton, gate, *args, **kwargs):
        if gate.kind == "z":
            return automaton
        return real(automaton, gate, *args, **kwargs)

    monkeypatch.setattr(engine_module, "apply_permutation_gate", dropped)
    return dropped


# ------------------------------------------------------------------ generators


class TestGenerators:
    def test_cross_mode_stream_is_deterministic(self):
        stream_a, stream_b = generate_cases(7), generate_cases(7)
        first = [next(stream_a) for _ in range(10)]
        second = [next(stream_b) for _ in range(10)]
        for a, b in zip(first, second):
            assert to_qasm(a.circuit) == to_qasm(b.circuit)
            assert to_qasm(a.reference) == to_qasm(b.reference)
            assert a.input_bits == b.input_bits
            assert (a.record is None) == (b.record is None)
            if a.record is not None:
                assert a.record.to_dict() == b.record.to_dict()

    def test_different_seeds_differ(self):
        a = [to_qasm(next(generate_cases(0)).circuit) for _ in range(5)]
        stream = generate_cases(1)
        b = [to_qasm(next(stream).circuit) for _ in range(5)]
        assert a != b

    def test_boolean_stream_is_deterministic_and_bounded(self):
        stream_a, stream_b = generate_boolean_cases(3), generate_boolean_cases(3)
        for _ in range(10):
            a, b = next(stream_a), next(stream_b)
            assert a.num_qubits == b.num_qubits <= 3
            assert a.alphabet == b.alphabet
            assert list(a.left) == list(b.left) and list(a.right) == list(b.right)


# --------------------------------------------------------------------- oracles


class TestOracles:
    def test_cross_mode_passes_on_bell_circuit(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        verdict = cross_mode_oracle(circuit, (0, 0))
        assert verdict.ok, verdict.detail

    def test_cross_mode_catches_a_broken_permutation_kernel(
        self, broken_permutation_engine
    ):
        # h puts qubit 0 in superposition, so a dropped z is observable
        circuit = Circuit(1).add("h", 0).add("z", 0)
        verdict = cross_mode_oracle(circuit, (0,))
        assert not verdict.ok
        assert verdict.gate_index == 1
        assert "z" in verdict.detail

    def test_boolean_oracle_passes_on_basis_sets(self):
        left = from_quantum_states([QuantumState.basis_state(2, 0)])
        right = from_quantum_states([QuantumState.basis_state(2, 3)])
        verdict = boolean_oracle(left, right)
        assert verdict.ok, verdict.detail

    def test_boolean_oracle_catches_flipped_complement(self, broken_complement):
        left = from_quantum_states([QuantumState.basis_state(2, 0)])
        right = from_quantum_states([QuantumState.basis_state(2, 1)])
        verdict = boolean_oracle(left, right)
        assert not verdict.ok
        assert verdict.operation in ("complement", "difference")

    def test_prefilter_drops_identical_circuits(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        assert static_prefilter(circuit, circuit.copy()) == "identical-circuit"

    def test_prefilter_drops_commuting_transpositions(self):
        from repro.circuits import MutationRecord

        reference = Circuit(2).add("z", 0).add("x", 1)
        mutant = Circuit(2).add("x", 1).add("z", 0)
        record = MutationRecord(("transpose", 0, mutant[0]))
        assert static_prefilter(reference, mutant, record) == "commuting-transpose"

    def test_prefilter_drops_symmetric_operand_swaps(self):
        from repro.circuits import MutationRecord

        reference = Circuit(2).add("h", 0).add("cz", 0, 1)
        mutant = Circuit(2).add("h", 0).add("cz", 1, 0)
        record = MutationRecord(("swap-operands", 1, mutant[1]))
        assert static_prefilter(reference, mutant, record) == "symmetric-operands"

    def test_prefilter_keeps_real_mutants(self):
        reference = Circuit(2).add("h", 0).add("cx", 0, 1)
        mutant = Circuit(2).add("h", 0).add("cx", 0, 1).add("t", 0)
        assert static_prefilter(reference, mutant) is None


# ---------------------------------------------------------------------- shrink


class TestShrink:
    def test_shrink_circuit_reaches_a_local_minimum(self):
        circuit = (
            Circuit(2).add("h", 0).add("x", 1).add("t", 0).add("cx", 0, 1).add("z", 1)
        )

        def still_bad(candidate):
            return any(gate.kind == "cx" for gate in candidate)

        minimized = shrink_circuit(circuit, still_bad)
        assert [gate.kind for gate in minimized] == ["cx"]

    def test_shrink_circuit_never_returns_a_passing_candidate(self):
        circuit = Circuit(1).add("x", 0).add("z", 0)
        minimized = shrink_circuit(circuit, lambda candidate: candidate.num_gates >= 2)
        assert minimized.num_gates == 2

    def test_shrink_states_keeps_at_least_one(self):
        states = [QuantumState.basis_state(1, i) for i in (0, 1)]
        kept = shrink_states(states, lambda remaining: len(remaining) >= 1)
        assert len(kept) == 1


# ---------------------------------------------------------------------- corpus


class TestCorpus:
    def test_add_and_reload_round_trips(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        identifier = corpus.add("cross-mode", {"circuit_qasm": "x"}, seed=3, detail="d")
        (entry,) = Corpus(tmp_path / "corpus").entries()
        assert entry["entry_id"] == identifier
        assert entry["check"] == "cross-mode"
        assert entry["seed"] == 3
        assert entry["payload"] == {"circuit_qasm": "x"}

    def test_entry_id_is_a_pure_content_address(self):
        first = entry_id("boolean", 1, None, {"a": 1})
        assert first == entry_id("boolean", 1, None, {"a": 1})
        assert first != entry_id("boolean", 2, None, {"a": 1})
        assert first != entry_id("boolean", 1, None, {"a": 2})

    def test_duplicate_adds_are_idempotent(self, tmp_path):
        corpus = Corpus(tmp_path)
        a = corpus.add("boolean", {"x": 1})
        b = corpus.add("boolean", {"x": 1}, detail="different detail is not identity")
        assert a == b
        assert len(corpus) == 1

    def test_malformed_entry_raises_corpus_error(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(CorpusError):
            Corpus(tmp_path).entries()

    def test_schema_invalid_entry_raises_corpus_error(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({"api_version": 2, "kind": "verify"}))
        with pytest.raises(CorpusError):
            Corpus(tmp_path).entries()

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        assert Corpus(tmp_path / "nowhere").entries() == []


# ---------------------------------------------------------------------- driver


class TestDriver:
    def test_healthy_run_finds_nothing(self):
        outcome = run_fuzz(FuzzSettings(budget_seconds=30, seed=0, max_cases=20))
        assert outcome.cases == 20
        assert outcome.divergences == 0
        assert outcome.ok

    def test_runs_are_deterministic_per_seed(self):
        a = run_fuzz(FuzzSettings(budget_seconds=60, seed=5, max_cases=15))
        b = run_fuzz(FuzzSettings(budget_seconds=60, seed=5, max_cases=15))
        assert (a.cases, a.prefiltered, a.findings) == (b.cases, b.prefiltered, b.findings)

    def test_broken_complement_is_caught_and_minimized(self, tmp_path, broken_complement):
        outcome = run_fuzz(FuzzSettings(
            budget_seconds=60, seed=0, checks=("boolean",), max_cases=6,
            corpus_dir=str(tmp_path),
        ))
        assert outcome.divergences > 0
        assert outcome.corpus_entries
        for document in Corpus(tmp_path).entries():
            assert document["check"] == "boolean"
            assert document["payload"]["operations"]  # the diverging operation
        finding = outcome.findings[0]
        assert finding["check"] == "boolean"
        assert finding["entry_id"] in outcome.corpus_entries

    def test_broken_engine_is_caught_and_localised(self, tmp_path, broken_permutation_engine):
        outcome = run_fuzz(FuzzSettings(
            budget_seconds=120, seed=0, checks=("cross-mode",), max_cases=60,
            corpus_dir=str(tmp_path),
        ))
        assert outcome.divergences > 0
        assert any(f["mutation"] is not None for f in outcome.findings)

    def test_replay_is_a_regression_gate(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        # harvest entries under a broken complement (fixture-free: patch by hand
        # so the breakage ends before the healthy replay below)
        real = boolean_module.complement
        boolean_module.complement = lambda a, alphabet=None: real(real(a, alphabet), alphabet)
        try:
            broken = run_fuzz(FuzzSettings(
                budget_seconds=60, seed=0, checks=("boolean",), max_cases=4,
                corpus_dir=str(corpus_dir),
            ))
            assert broken.divergences > 0
            # while still broken, replay must fail every stored entry
            replay_broken = replay_corpus(corpus_dir)
            assert replay_broken.replayed == len(list(Corpus(corpus_dir).paths()))
            assert replay_broken.divergences == replay_broken.replayed
        finally:
            boolean_module.complement = real
        # on the healthy tree every entry re-verifies
        replay_healthy = replay_corpus(corpus_dir)
        assert replay_healthy.replayed > 0
        assert replay_healthy.divergences == 0

    def test_broken_fuzzing_does_not_poison_later_replays(
        self, tmp_path, broken_permutation_engine, monkeypatch
    ):
        # the divergent run and the healthy replay share a process; only the
        # private per-run GateRuntime keeps the broken memo entries out of the
        # healthy verdicts
        outcome = run_fuzz(FuzzSettings(
            budget_seconds=120, seed=0, checks=("cross-mode",), max_cases=60,
            corpus_dir=str(tmp_path),
        ))
        assert outcome.divergences > 0
        monkeypatch.undo()  # heal the engine
        replay = replay_corpus(tmp_path)
        assert replay.divergences == 0, replay.findings

    def test_replay_of_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            replay_corpus(tmp_path / "typo")

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            FuzzSettings(checks=("nonsense",))
        with pytest.raises(ValueError):
            FuzzSettings(modes=("nonsense",))
        with pytest.raises(ValueError):
            FuzzSettings(budget_seconds=-1)


# ------------------------------------------------------------------------- API


class TestFuzzApi:
    def test_problem_round_trips_through_json(self):
        problem = FuzzProblem(budget_seconds=2.5, seed=9, checks=("boolean",),
                              max_cases=3, corpus_dir="somewhere")
        assert Problem.from_json(problem.to_json()) == problem

    def test_problem_validation(self):
        with pytest.raises(ValueError):
            FuzzProblem(checks=("nope",))
        with pytest.raises(ValueError):
            FuzzProblem(replay=True)  # replay needs a corpus_dir
        with pytest.raises(ValueError):
            FuzzProblem(max_cases=-1)

    def test_session_runs_a_fuzz_problem(self):
        with Session() as session:
            result = session.run(FuzzProblem(budget_seconds=30, seed=0, max_cases=8))
        assert isinstance(result, FuzzResult)
        assert result.cases == 8
        assert result.divergences == 0
        assert result.exit_code == 0
        assert Result.from_json(result.to_json()) == result

    def test_session_replays_a_corpus(self, tmp_path):
        with Session() as session:
            result = session.run(FuzzProblem(replay=True, corpus_dir=str(tmp_path)))
        assert result.replay
        assert result.replayed == 0
        assert result.exit_code == 0

    def test_campaign_corpus_gate_passes_and_counts(self, tmp_path):
        from repro.api import CampaignProblem

        corpus_dir = tmp_path / "corpus"
        Corpus(corpus_dir).add("cross-mode", {
            "circuit_qasm": to_qasm(Circuit(1).add("x", 0)),
            "reference_qasm": to_qasm(Circuit(1)),
            "input_bits": "0",
            "modes": ["hybrid"],
            "include_path_sum": False,
            "localised_gate": 0,
        })
        problem = CampaignProblem(
            family="bv", size=3, mutants=2, corpus_dir=str(corpus_dir),
            report_path=str(tmp_path / "report.jsonl"),
        )
        with Session(cache_dir="") as session:
            result = session.run(problem)
        assert result.corpus_replayed == 1
        assert result.corpus_failures == 0
        assert result.exit_code == 0

    def test_campaign_corpus_gate_fails_the_run_on_regression(
        self, tmp_path, broken_complement
    ):
        from repro.api import CampaignProblem
        from repro.ta import serialization

        corpus_dir = tmp_path / "corpus"
        left = from_quantum_states([QuantumState.basis_state(1, 0)])
        right = from_quantum_states([QuantumState.basis_state(1, 1)])
        Corpus(corpus_dir).add("boolean", {
            "num_qubits": 1,
            "alphabet": [[0, 0, 0, 0, 0], [1, 0, 0, 0, 0]],
            "left_ta": serialization.to_payload(left),
            "right_ta": serialization.to_payload(right),
            "operations": ["complement"],
            "witness": None,
        })
        problem = CampaignProblem(
            family="bv", size=3, mutants=2, corpus_dir=str(corpus_dir),
            report_path=str(tmp_path / "report.jsonl"),
        )
        with Session(cache_dir="") as session:
            result = session.run(problem)
        assert result.corpus_replayed == 1
        assert result.corpus_failures == 1
        assert result.exit_code == 1


# ------------------------------------------------------------------------- CLI


class TestFuzzCli:
    def test_fuzz_run_exits_zero_on_healthy_tree(self, capsys):
        assert cli_main(["fuzz", "--budget", "30", "--cases", "10", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "10 case(s)" in out
        assert "no divergences" in out

    def test_fuzz_json_document_round_trips(self, capsys):
        assert cli_main(["fuzz", "--budget", "30", "--cases", "5", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        result = Result.from_dict(document)
        assert isinstance(result, FuzzResult)
        assert result.cases == 5

    def test_fuzz_replay_needs_a_directory(self, capsys):
        assert cli_main(["fuzz", "replay"]) == 2
        assert "corpus directory" in capsys.readouterr().err

    def test_fuzz_replay_of_missing_directory_fails(self, tmp_path, capsys):
        assert cli_main(["fuzz", "replay", str(tmp_path / "typo")]) == 2

    def test_fuzz_positional_without_replay_is_rejected(self, tmp_path, capsys):
        # argparse itself rejects a non-'replay' action positional
        with pytest.raises(SystemExit) as info:
            cli_main(["fuzz", str(tmp_path)])
        assert info.value.code == 2

    def test_fuzz_corpus_env_var_is_the_default(self, tmp_path, capsys, monkeypatch):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        monkeypatch.setenv("AUTOQ_REPRO_FUZZ_CORPUS", str(corpus_dir))
        assert cli_main(["fuzz", "replay"]) == 0
        assert "0 corpus entry(ies)" in capsys.readouterr().out

    def test_fuzz_replay_round_trip_through_the_cli(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        real = boolean_module.complement
        boolean_module.complement = lambda a, alphabet=None: real(real(a, alphabet), alphabet)
        try:
            assert cli_main([
                "fuzz", "--budget", "60", "--cases", "4", "--checks", "boolean",
                "--corpus", str(corpus_dir),
            ]) == 1
        finally:
            boolean_module.complement = real
        capsys.readouterr()
        assert cli_main(["fuzz", "replay", str(corpus_dir)]) == 0
        assert "corpus clean" in capsys.readouterr().out

    def test_campaign_corpus_flag_is_rejected_in_matrix_mode(self, tmp_path, capsys):
        assert cli_main([
            "campaign", "--families", "bv", "--sizes", "3",
            "--corpus", str(tmp_path),
        ]) == 2


# ------------------------------------------------------------------ slow sweep


@pytest.mark.fuzz_slow
class TestFuzzSlow:
    """Deeper sweeps excluded from tier-1 (run with ``-m fuzz_slow``)."""

    def test_long_healthy_sweep_with_path_sum(self):
        outcome = run_fuzz(FuzzSettings(
            budget_seconds=120, seed=0, max_cases=150, include_path_sum=True,
        ))
        assert outcome.divergences == 0, outcome.findings

    def test_committed_corpus_replays_clean(self):
        import os

        corpus_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "corpus")
        outcome = replay_corpus(corpus_dir)
        assert outcome.replayed > 0
        assert outcome.divergences == 0, outcome.findings
