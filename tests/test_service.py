"""Tests for the verification service daemon (``repro.service``).

Covers the transport-independent core (admission budget, per-request
timeout, crash isolation, SSE streaming, graceful shutdown), the stdlib
HTTP front-end via the real socket + :class:`repro.api.client.ServiceClient`
(concurrent requests sharing one warm runtime, metrics exposition), and the
client's failure envelope (unreachable daemon, in-band error documents).
"""

import threading

import pytest

from repro.api import (
    CampaignProblem,
    CampaignResult,
    CircuitSource,
    ErrorResult,
    SessionConfig,
    VerifyProblem,
    VerifyResult,
    validate_document,
)
from repro.api.client import (
    SERVER_ENV,
    ServiceClient,
    ServiceError,
    default_server_url,
)
from repro.service import (
    ServiceConfig,
    ServiceServer,
    VerificationService,
    build_fastapi_app,
    fastapi_available,
)


def _config(**overrides) -> ServiceConfig:
    settings = dict(
        port=0,  # only the HTTP tests bind; 0 keeps them collision-free
        workers=2,
        session=SessionConfig(cache_dir="", store_dir=""),
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def _verify_document(size: int = 4) -> dict:
    return VerifyProblem(circuit=CircuitSource.from_family("bv", size)).to_dict()


def _campaign_problem(tmp_path, mutants: int = 3) -> CampaignProblem:
    return CampaignProblem(
        family="bv", size=4, mutants=mutants, seed=0,
        report_path=str(tmp_path / "campaign_report.jsonl"),
    )


@pytest.fixture
def service():
    with VerificationService(_config()) as svc:
        yield svc


class TestServiceConfig:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError, match="max_in_flight"):
            ServiceConfig(max_in_flight=0)
        with pytest.raises(ValueError, match="request_timeout"):
            ServiceConfig(request_timeout=0)


class TestServiceCore:
    def test_verify_round_trip(self, service):
        status, payload = service.run_document(_verify_document())
        assert status == 200
        validate_document(payload, kind="verify")
        assert payload["holds"] is True

    def test_repeated_requests_share_the_warm_runtime(self, service):
        service.run_document(_verify_document())
        before = service.session.runtime.stats_snapshot()["memo"]["hits"]
        status, _ = service.run_document(_verify_document())
        assert status == 200
        after = service.session.runtime.stats_snapshot()["memo"]["hits"]
        # the second identical circuit is answered from the gate memo
        assert after > before

    def test_invalid_document_is_a_400_envelope(self, service):
        status, payload = service.run_document({"kind": "problem/teleport"})
        assert status == 400
        validate_document(payload, kind="error")
        assert payload["error"] == "invalid-request"

    def test_admission_budget_answers_429(self, monkeypatch):
        release = threading.Event()

        def held(problem):
            release.wait(10)
            return VerifyResult(holds=True)

        with VerificationService(_config(max_in_flight=1)) as service:
            monkeypatch.setattr(service.session, "run", held)
            first = {}
            thread = threading.Thread(
                target=lambda: first.update(zip(("status", "payload"),
                                                service.run_document(_verify_document()))),
            )
            thread.start()
            while service.metrics.in_flight == 0:  # admitted, now holding the slot
                pass
            status, payload = service.run_document(_verify_document())
            assert status == 429
            assert payload["error"] == "saturated"
            assert service.metrics.rejected_total == 1
            release.set()
            thread.join()
            assert first["status"] == 200
            # the rejected request never touched the in-flight gauge
            assert service.metrics.in_flight == 0

    def test_timeout_answers_504_but_work_completes(self, monkeypatch):
        release = threading.Event()
        finished = threading.Event()

        def slow(problem):
            release.wait(10)
            finished.set()
            return VerifyResult(holds=True)

        with VerificationService(_config(request_timeout=0.05)) as service:
            monkeypatch.setattr(service.session, "run", slow)
            status, payload = service.run_document(_verify_document())
            assert status == 504
            assert payload["error"] == "timeout"
            assert service.metrics.timeouts_total == 1
            release.set()
            assert finished.wait(10)  # the work ran to completion regardless

    def test_crashed_analysis_is_a_500_not_a_dead_daemon(self, service, monkeypatch):
        def boom(problem):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service.session, "run", boom)
        status, payload = service.run_document(_verify_document())
        assert status == 500
        assert payload["error"] == "internal"
        assert "engine exploded" in payload["message"]
        monkeypatch.undo()
        status, _ = service.run_document(_verify_document())
        assert status == 200

    def test_campaign_stream_yields_records_then_summary(self, service, tmp_path):
        events = list(service.stream_campaign(_campaign_problem(tmp_path).to_dict()))
        names = [name for name, _ in events]
        assert names[-1] == "summary"
        assert set(names[:-1]) == {"record"}
        summary = events[-1][1]
        validate_document(summary, kind="campaign")
        assert summary["jobs"] == len(events) - 1  # one record per job
        for _, record in events[:-1]:
            validate_document(record, kind="campaign-job")
        assert service.metrics.sse_records_total == len(events) - 1

    def test_stream_rejects_non_campaign_documents(self, service):
        events = list(service.stream_campaign(_verify_document()))
        assert len(events) == 1
        name, payload = events[0]
        assert name == "error"
        assert payload["error"] == "invalid-request"

    def test_closed_service_answers_503(self):
        service = VerificationService(_config())
        service.close()
        status, payload = service.run_document(_verify_document())
        assert status == 503
        assert payload["error"] == "shutting-down"

    def test_close_drains_in_flight_work(self, monkeypatch):
        release = threading.Event()
        finished = threading.Event()
        service = VerificationService(_config())

        def held(problem):
            release.wait(10)
            finished.set()
            return VerifyResult(holds=True)

        monkeypatch.setattr(service.session, "run", held)
        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.setdefault(
                "answer", service.run_document(_verify_document())),
        )
        thread.start()
        while service.metrics.in_flight == 0:
            pass
        closer = threading.Thread(target=service.close)
        closer.start()
        release.set()
        closer.join(timeout=10)
        thread.join(timeout=10)
        assert finished.is_set()
        assert outcome["answer"][0] == 200


@pytest.fixture(scope="class")
def server():
    instance = ServiceServer(_config()).start()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestHTTPFrontEnd:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_typed_verify_over_http(self, client):
        result = client.run(VerifyProblem(circuit=CircuitSource.from_family("bv", 4)))
        assert isinstance(result, VerifyResult)
        assert result.holds and result.exit_code == 0

    def test_concurrent_requests_share_one_runtime(self, server, client):
        memo_before = server.service.session.runtime.stats_snapshot()["memo"]["hits"]
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(
                client.run(VerifyProblem(circuit=CircuitSource.from_family("bv", 5)))))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4 and all(r.holds for r in results)
        memo_after = server.service.session.runtime.stats_snapshot()["memo"]["hits"]
        assert memo_after > memo_before  # identical circuits hit the shared memo

    def test_campaign_streams_over_sse(self, client, tmp_path):
        records = []
        result = client.run_campaign(_campaign_problem(tmp_path),
                                     on_record=records.append)
        assert isinstance(result, CampaignResult)
        assert result.jobs == len(records) == 4  # reference + 3 mutants
        assert all(record["verdict"] in ("holds", "violated", "error", "unsupported")
                   for record in records)

    def test_metrics_exposition_reflects_traffic(self, client):
        client.run(VerifyProblem(circuit=CircuitSource.from_family("bv", 4)))
        text = client.metrics_text()
        assert 'repro_requests_total{kind="verify"}' in text
        assert "repro_uptime_seconds" in text
        assert "repro_gate_memo_hits_total" in text

    def test_unknown_endpoint_is_an_error_document(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/nope", body={})
        assert excinfo.value.result.error == "not-found"
        assert excinfo.value.result.code == 404

    def test_invalid_body_is_an_error_document(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.run_document({"kind": "problem/teleport"})
        assert excinfo.value.result.error == "invalid-request"
        assert excinfo.value.result.code == 400


class TestServiceClient:
    def test_unreachable_daemon_raises_a_typed_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert isinstance(excinfo.value.result, ErrorResult)
        assert excinfo.value.result.error == "unreachable"
        assert excinfo.value.result.exit_code == 2

    def test_default_server_url_reads_the_environment(self, monkeypatch):
        monkeypatch.delenv(SERVER_ENV, raising=False)
        assert default_server_url() is None
        monkeypatch.setenv(SERVER_ENV, "http://example:1234")
        assert default_server_url() == "http://example:1234"
        monkeypatch.setenv(SERVER_ENV, "")
        assert default_server_url() is None


class TestOptionalFastAPI:
    def test_feature_detection_matches_importability(self):
        try:
            import fastapi  # noqa: F401
            expected = True
        except ImportError:
            expected = False
        assert fastapi_available() is expected

    def test_build_without_fastapi_raises_import_error(self):
        if fastapi_available():
            pytest.skip("FastAPI installed; the guarded import cannot fail")
        with pytest.raises(ImportError):
            build_fastapi_app(service=None)
