"""Tests for the baseline equivalence checkers (path-sum, stimuli, unitary)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    PathSumChecker,
    PathSumVerdict,
    RandomStimuliChecker,
    StimuliVerdict,
    check_unitary_equivalence,
    unitaries_equal_up_to_phase,
)
from repro.baselines.pathsum import BoolPoly, PhasePoly
from repro.circuits import Circuit, inject_random_gate, random_circuit
from repro.simulator import circuit_unitary


class TestBoolPoly:
    def test_xor_and_and(self):
        a, b = BoolPoly.variable("a"), BoolPoly.variable("b")
        assert (a ^ a).is_zero()
        assert (a ^ BoolPoly.zero()) == a
        assert (a & BoolPoly.one()) == a
        assert (a & BoolPoly.zero()).is_zero()
        ab = a & b
        assert ab.variables() == frozenset({"a", "b"})

    def test_substitute(self):
        a, b, c = (BoolPoly.variable(name) for name in "abc")
        poly = (a & b) ^ c
        substituted = poly.substitute("b", c)
        # a*c ^ c
        assert substituted == ((a & c) ^ c)

    def test_is_variable(self):
        assert BoolPoly.variable("x0").is_variable() == "x0"
        assert (BoolPoly.variable("x0") ^ BoolPoly.one()).is_variable() is None

    def test_repr(self):
        assert repr(BoolPoly.zero()) == "0"
        assert "a" in repr(BoolPoly.variable("a"))


class TestPhasePoly:
    def test_add_term_mod_8(self):
        phase = PhasePoly.zero().add_term(4, BoolPoly.variable("a"))
        phase = phase.add_term(4, BoolPoly.variable("a"))
        assert phase.is_zero()

    def test_xor_lifting(self):
        # lift(a ^ b) = a + b - 2ab
        phase = PhasePoly.zero().add_term(1, BoolPoly.variable("a") ^ BoolPoly.variable("b"))
        assert phase.coefficient({"a"}) == 1
        assert phase.coefficient({"b"}) == 1
        assert phase.coefficient({"a", "b"}) == 6  # -2 mod 8

    def test_factor_out(self):
        phase = PhasePoly.zero().add_term(4, BoolPoly.variable("y") & BoolPoly.variable("x"))
        phase = phase.add_term(2, BoolPoly.variable("x"))
        quotient, remainder = phase.factor_out("y")
        assert quotient.coefficient({"x"}) == 4
        assert remainder.coefficient({"x"}) == 2


class TestPathSumChecker:
    def test_empty_circuit_is_identity(self):
        checker = PathSumChecker()
        path_sum = checker.symbolic_execution(Circuit(3))
        assert path_sum.is_identity(3)

    def test_self_equivalence_of_clifford_t_circuit(self):
        circuit = Circuit(2).add("h", 0).add("t", 0).add("cx", 0, 1).add("s", 1).add("h", 1)
        result = PathSumChecker().check_equivalence(circuit, circuit.copy())
        assert result.verdict == PathSumVerdict.EQUAL
        assert bool(result)

    def test_classical_circuits_get_definitive_answers(self):
        reference = Circuit(3).add("ccx", 0, 1, 2).add("cx", 0, 1)
        buggy = reference.copy().add("x", 2)
        assert PathSumChecker().check_equivalence(reference, reference.copy()).verdict == PathSumVerdict.EQUAL
        assert PathSumChecker().check_equivalence(reference, buggy).verdict == PathSumVerdict.NOT_EQUAL

    def test_phase_bug_in_classical_circuit_detected(self):
        reference = Circuit(2).add("cx", 0, 1)
        buggy = Circuit(2).add("cx", 0, 1).add("z", 0)
        assert PathSumChecker().check_equivalence(reference, buggy).verdict == PathSumVerdict.NOT_EQUAL

    def test_simple_hadamard_identities(self):
        double_h = Circuit(1).add("h", 0).add("h", 0)
        assert PathSumChecker().check_equivalence(double_h, Circuit(1)).verdict == PathSumVerdict.EQUAL

    def test_width_mismatch(self):
        result = PathSumChecker().check_equivalence(Circuit(2).add("x", 0), Circuit(3).add("x", 0))
        assert result.verdict == PathSumVerdict.NOT_EQUAL

    def test_rotation_adjoint_is_inconclusive(self):
        circuit = Circuit(1).add("rx", 0)
        result = PathSumChecker().check_equivalence(circuit, circuit.copy())
        assert result.verdict == PathSumVerdict.INCONCLUSIVE

    def test_monomial_budget_gives_inconclusive(self):
        checker = PathSumChecker(max_monomials=4)
        circuit = random_circuit(5, num_gates=30, seed=12)
        result = checker.check_equivalence(circuit, circuit.copy())
        assert result.verdict in (PathSumVerdict.INCONCLUSIVE, PathSumVerdict.EQUAL)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_soundness_against_brute_force(self, seed):
        """'equal' and 'not_equal' verdicts must agree with the unitary ground truth."""
        import random

        rng = random.Random(seed)
        first = random_circuit(3, num_gates=10, seed=seed)
        if rng.random() < 0.5:
            second = first.copy()
        else:
            second, _ = inject_random_gate(first, seed=seed + 1000)
        verdict = PathSumChecker().check_equivalence(first, second).verdict
        if verdict == PathSumVerdict.INCONCLUSIVE:
            return
        truth = check_unitary_equivalence(first, second).equivalent
        assert (verdict == PathSumVerdict.EQUAL) == truth


class TestRandomStimuli:
    def test_equal_circuits_report_probably_equal(self):
        circuit = random_circuit(4, num_gates=12, seed=3)
        result = RandomStimuliChecker(num_stimuli=6, seed=0).check_equivalence(circuit, circuit.copy())
        assert result.verdict == StimuliVerdict.PROBABLY_EQUAL
        assert result.stimuli_tried >= 1
        assert not bool(result)

    def test_detects_classical_bug(self):
        reference = Circuit(3).add("cx", 0, 2)
        buggy = Circuit(3).add("cx", 0, 2).add("x", 1)
        result = RandomStimuliChecker(num_stimuli=8, seed=0).check_equivalence(reference, buggy)
        assert result.verdict == StimuliVerdict.NOT_EQUAL
        assert result.witness_input is not None

    def test_misses_phase_bug_on_basis_stimuli(self):
        # a CZ only changes the phase of |11>; basis stimuli outputs differ...
        # but a Z *after a Hadamard-free circuit* on |0> inputs is invisible:
        reference = Circuit(2)
        buggy = Circuit(2).add("cz", 0, 1)
        # with only the all-zero stimulus the difference cannot be observed
        checker = RandomStimuliChecker(num_stimuli=1, seed=0, include_zero_state=True)
        result = checker.check_equivalence(reference, buggy)
        assert result.verdict == StimuliVerdict.PROBABLY_EQUAL

    def test_number_of_stimuli_is_bounded_by_basis_size(self):
        circuit = Circuit(2).add("x", 0)
        result = RandomStimuliChecker(num_stimuli=100, seed=1).check_equivalence(circuit, circuit.copy())
        assert result.stimuli_tried <= 4

    def test_width_mismatch(self):
        result = RandomStimuliChecker().check_equivalence(Circuit(2).add("x", 0), Circuit(3).add("x", 0))
        assert result.verdict == StimuliVerdict.NOT_EQUAL


class TestUnitaryBaseline:
    def test_equal_circuits(self):
        circuit = random_circuit(3, num_gates=9, seed=5)
        assert check_unitary_equivalence(circuit, circuit.copy()).equivalent

    def test_global_phase_is_ignored(self):
        reference = Circuit(1).add("x", 0)
        # Z X Z = -X: same unitary up to the global phase -1
        phased = Circuit(1).add("z", 0).add("x", 0).add("z", 0)
        assert check_unitary_equivalence(reference, phased).equivalent

    def test_detects_difference(self):
        reference = Circuit(2).add("h", 0)
        buggy = Circuit(2).add("h", 0).add("t", 0)
        result = check_unitary_equivalence(reference, buggy)
        assert not result.equivalent
        assert result.max_deviation > 0

    def test_size_limit(self):
        with pytest.raises(ValueError):
            check_unitary_equivalence(Circuit(13).add("x", 0), Circuit(13).add("x", 0))

    def test_unitaries_equal_up_to_phase_helper(self):
        import numpy as np

        unitary = circuit_unitary(Circuit(2).add("h", 0).add("cx", 0, 1))
        assert unitaries_equal_up_to_phase(unitary, unitary * np.exp(0.3j))
        assert not unitaries_equal_up_to_phase(unitary, np.eye(4, dtype=complex))
        assert not unitaries_equal_up_to_phase(unitary, unitary * 2.0)
        assert not unitaries_equal_up_to_phase(unitary, np.eye(8, dtype=complex))
