"""Tests for the CHP-tableau stabilizer baseline.

The tableau simulation is cross-checked against the exact state-vector
simulator and the brute-force unitary comparison on the Clifford fragment:
whenever the tableau declares two Clifford circuits (non-)equivalent, the
ground-truth oracles must agree.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    CliffordTableau,
    StabilizerChecker,
    StabilizerState,
    StabilizerVerdict,
    check_unitary_equivalence,
    is_clifford_circuit,
    is_clifford_gate,
)
from repro.baselines.stabilizer import CLIFFORD_GATES
from repro.circuits import Circuit, Gate
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState

_SINGLE = ("x", "y", "z", "h", "s", "sdg", "rx", "ry")
_DOUBLE = ("cx", "cz", "swap")


def _random_clifford_circuit(num_qubits: int, num_gates: int, seed: int) -> Circuit:
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"clifford_{seed}")
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            kind = rng.choice(_DOUBLE)
            a, b = rng.sample(range(num_qubits), 2)
            circuit.add(kind, a, b)
        else:
            circuit.add(rng.choice(_SINGLE), rng.randrange(num_qubits))
    return circuit


# --------------------------------------------------------------------------- classification
def test_clifford_gate_classification():
    assert is_clifford_gate(Gate("h", (0,)))
    assert is_clifford_gate(Gate("cz", (0, 1)))
    assert is_clifford_gate(Gate("swap", (0, 1)))
    assert not is_clifford_gate(Gate("t", (0,)))
    assert not is_clifford_gate(Gate("ccx", (0, 1, 2)))
    assert not is_clifford_gate(Gate("cs", (0, 1)))


def test_clifford_circuit_classification():
    assert is_clifford_circuit(Circuit(2).add("h", 0).add("cx", 0, 1))
    assert not is_clifford_circuit(Circuit(2).add("h", 0).add("t", 1))


def test_clifford_gates_constant_matches_classifier():
    for kind in CLIFFORD_GATES:
        arity = {"cx": 2, "cz": 2, "swap": 2}.get(kind, 1)
        assert is_clifford_gate(Gate(kind, tuple(range(arity))))


# --------------------------------------------------------------------------- tableau identities
def test_identity_tableau_fixed_points():
    tableau = CliffordTableau(3)
    for qubit in range(3):
        assert tableau.image_of_x(qubit) == (1 << qubit, 0, 0)
        assert tableau.image_of_z(qubit) == (0, 1 << qubit, 0)


def test_hadamard_swaps_x_and_z():
    tableau = CliffordTableau.from_circuit(Circuit(1).add("h", 0))
    assert tableau.image_of_x(0) == (0, 1, 0)  # X -> Z
    assert tableau.image_of_z(0) == (1, 0, 0)  # Z -> X


def test_x_gate_flips_z_sign():
    tableau = CliffordTableau.from_circuit(Circuit(1).add("x", 0))
    assert tableau.image_of_z(0) == (0, 1, 1)  # Z -> -Z
    assert tableau.image_of_x(0) == (1, 0, 0)  # X -> X


def test_s_gate_maps_x_to_y():
    tableau = CliffordTableau.from_circuit(Circuit(1).add("s", 0))
    assert tableau.image_of_x(0) == (1, 1, 0)  # X -> Y (= XZ up to the tracked phase)
    assert tableau.image_of_z(0) == (0, 1, 0)


def test_cnot_propagates_x_and_z():
    tableau = CliffordTableau.from_circuit(Circuit(2).add("cx", 0, 1))
    assert tableau.image_of_x(0) == (0b11, 0, 0)  # X_c -> X_c X_t
    assert tableau.image_of_x(1) == (0b10, 0, 0)  # X_t -> X_t
    assert tableau.image_of_z(0) == (0, 0b01, 0)  # Z_c -> Z_c
    assert tableau.image_of_z(1) == (0, 0b11, 0)  # Z_t -> Z_c Z_t


@pytest.mark.parametrize(
    "kind,inverse",
    [("h", "h"), ("s", "sdg"), ("x", "x"), ("y", "y"), ("z", "z"), ("rx", None), ("ry", None)],
)
def test_single_qubit_gate_followed_by_inverse_is_identity(kind, inverse):
    circuit = Circuit(1).add(kind, 0)
    if inverse is None:
        # rx/ry are order-4 rotations: four applications give the identity (up to phase)
        for _ in range(3):
            circuit.add(kind, 0)
    else:
        circuit.add(inverse, 0)
    assert CliffordTableau.from_circuit(circuit) == CliffordTableau(1)


def test_swap_decomposition_matches_native_swap():
    native = CliffordTableau.from_circuit(Circuit(2).add("swap", 0, 1))
    decomposed = CliffordTableau.from_circuit(
        Circuit(2).add("cx", 0, 1).add("cx", 1, 0).add("cx", 0, 1)
    )
    assert native == decomposed


def test_cz_is_symmetric():
    assert CliffordTableau.from_circuit(Circuit(2).add("cz", 0, 1)) == CliffordTableau.from_circuit(
        Circuit(2).add("cz", 1, 0)
    )


def test_tableau_rejects_non_clifford():
    with pytest.raises(ValueError):
        CliffordTableau.from_circuit(Circuit(1).add("t", 0))


# --------------------------------------------------------------------------- stabilizer states
def test_zero_state_stabilizers():
    state = StabilizerState.from_circuit(Circuit(2))
    assert state.canonical_generators() == ((0, 0b01, 0), (0, 0b10, 0))
    assert state.expectation_of_z(0) == 1
    assert state.expectation_of_z(1) == 1


def test_x_flips_measurement_outcome():
    state = StabilizerState.from_circuit(Circuit(2).add("x", 1))
    assert state.expectation_of_z(0) == 1
    assert state.expectation_of_z(1) == -1


def test_plus_state_has_undetermined_outcome():
    state = StabilizerState.from_circuit(Circuit(1).add("h", 0))
    assert state.expectation_of_z(0) is None


def test_ghz_state_outcomes_are_undetermined_but_correlated(ghz_circuit):
    state = StabilizerState.from_circuit(ghz_circuit)
    for qubit in range(3):
        assert state.expectation_of_z(qubit) is None
    # Z1 Z2 and Z2 Z3 are stabilizers: they appear in the canonical form
    generators = state.canonical_generators()
    z_only = [row for row in generators if row[0] == 0]
    assert len(z_only) == 2


def test_bell_state_equals_its_textbook_stabilizers(epr_circuit):
    state = StabilizerState.from_circuit(epr_circuit)
    # |Phi+> is stabilized by X1X2 and Z1Z2
    assert (0, 0b11, 0) in state.canonical_generators()
    assert (0b11, 0, 0) in state.canonical_generators()


def test_initial_bits_change_the_state():
    zero = StabilizerState.from_circuit(Circuit(1), initial_bits=(0,))
    one = StabilizerState.from_circuit(Circuit(1), initial_bits=(1,))
    assert zero != one
    assert one.expectation_of_z(0) == -1


def test_stabilizer_state_equality_is_semantic():
    first = StabilizerState.from_circuit(Circuit(2).add("h", 0).add("cx", 0, 1))
    second = StabilizerState.from_circuit(Circuit(2).add("h", 1).add("cx", 1, 0))
    assert first == second  # both are the Bell state


# --------------------------------------------------------------------------- checker
def test_checker_proves_textbook_identities():
    checker = StabilizerChecker()
    assert checker.check_equivalence(
        Circuit(1).add("h", 0).add("z", 0).add("h", 0), Circuit(1).add("x", 0)
    ).verdict == StabilizerVerdict.EQUAL
    assert checker.check_equivalence(
        Circuit(2).add("cz", 0, 1),
        Circuit(2).add("h", 1).add("cx", 0, 1).add("h", 1),
    ).verdict == StabilizerVerdict.EQUAL


def test_checker_detects_injected_bug():
    checker = StabilizerChecker()
    original = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2)
    buggy = original.copy().add("z", 2)
    assert checker.check_equivalence(original, buggy).verdict == StabilizerVerdict.NOT_EQUAL


def test_checker_inconclusive_on_t_gates():
    checker = StabilizerChecker()
    result = checker.check_equivalence(Circuit(1).add("t", 0), Circuit(1).add("t", 0))
    assert result.verdict == StabilizerVerdict.INCONCLUSIVE
    assert "non-Clifford" in result.reason


def test_checker_width_mismatch():
    checker = StabilizerChecker()
    assert (
        checker.check_equivalence(Circuit(1).add("h", 0), Circuit(2).add("h", 0)).verdict
        == StabilizerVerdict.NOT_EQUAL
    )


def test_check_states_distinguishes_h_from_identity():
    checker = StabilizerChecker()
    result = checker.check_states(Circuit(1).add("h", 0), Circuit(1))
    assert result.verdict == StabilizerVerdict.NOT_EQUAL


def test_check_states_cannot_see_bug_behind_fixed_input():
    # A bug on the |1> branch of a control is invisible to a single |0...0> run
    checker = StabilizerChecker()
    original = Circuit(2).add("cx", 0, 1)
    buggy = Circuit(2).add("cx", 0, 1).add("cz", 0, 1)
    assert checker.check_states(original, buggy).verdict == StabilizerVerdict.EQUAL
    assert checker.check_equivalence(original, buggy).verdict == StabilizerVerdict.NOT_EQUAL


# --------------------------------------------------------------------------- cross-checks
@pytest.mark.parametrize("seed", range(8))
def test_tableau_equivalence_matches_unitary_oracle(seed):
    first = _random_clifford_circuit(3, 12, seed)
    second = _random_clifford_circuit(3, 12, seed + 100)
    verdict = StabilizerChecker().check_equivalence(first, second)
    ground_truth = check_unitary_equivalence(first, second)
    assert (verdict.verdict == StabilizerVerdict.EQUAL) == ground_truth.equivalent


@pytest.mark.parametrize("seed", range(8))
def test_tableau_declares_self_equivalence_after_recomposition(seed):
    circuit = _random_clifford_circuit(4, 16, seed)
    # appending a gate and its inverse must preserve the tableau
    padded = circuit.copy()
    padded.add("s", seed % 4).add("sdg", seed % 4).add("h", (seed + 1) % 4).add("h", (seed + 1) % 4)
    assert StabilizerChecker().check_equivalence(circuit, padded).verdict == StabilizerVerdict.EQUAL


@pytest.mark.parametrize("seed", range(6))
def test_deterministic_outcomes_match_statevector(seed):
    """Where the stabilizer formalism says an outcome is determined, the exact
    simulator must assign the full probability mass to that outcome."""
    circuit = _random_clifford_circuit(3, 10, seed)
    state = StateVectorSimulator().run(circuit, QuantumState.zero_state(3))
    stabilizer = StabilizerState.from_circuit(circuit)
    for qubit in range(3):
        expectation = stabilizer.expectation_of_z(qubit)
        if expectation is None:
            continue
        wanted_bit = 0 if expectation == 1 else 1
        for bits, amplitude in state.items():
            if not amplitude.is_zero():
                assert bits[qubit] == wanted_bit


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=4))
def test_property_circuit_equals_itself_reordered_commuting_prefix(seed, num_qubits):
    """Appending the inverse circuit always yields the identity tableau."""
    circuit = _random_clifford_circuit(num_qubits, 3 * num_qubits, seed)
    inverse_gates = []
    for gate in reversed(list(circuit.decomposed())):
        inverse_gates.append(gate.dagger() if gate.kind in ("s", "sdg") else gate)
    roundtrip = Circuit(num_qubits, list(circuit.decomposed()) + inverse_gates)
    if any(gate.kind in ("rx", "ry") for gate in circuit):
        return  # rx/ry are not self-inverse; skip those samples
    assert CliffordTableau.from_circuit(roundtrip) == CliffordTableau(num_qubits)
