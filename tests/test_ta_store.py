"""Tests for the cross-process automaton store and its payload codec.

Covers the three layers the store spans: the lossless payload codec in
``repro.ta.serialization`` (round-trips must preserve ``structure_key()``
exactly, including composition tags), the content-addressed on-disk store in
``repro.ta.store`` (atomic puts, corruption/schema rejection, LRU, gc), and
the engine's two-tier lookup (process memo -> store -> compute + publish).
"""

import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import build_family
from repro.circuits import random_circuit
from repro.core import verify_triple
from repro.core.engine import (
    CircuitEngine,
    EngineStatistics,
    clear_gate_cache,
    configure_gate_store,
    run_circuit,
    set_gate_store,
)
from repro.core.tagging import tag
from repro.states import QuantumState
from repro.ta import (
    AutomatonStore,
    all_basis_states_ta,
    basis_state_ta,
    check_equivalence,
    from_quantum_states,
    serialization,
)
from repro.ta import store as store_module
from repro.ta.automaton import clear_intern_tables, clear_reduce_cache
from repro.algebraic import AlgebraicNumber


@pytest.fixture(autouse=True)
def _detached_store():
    """Never leak a configured store (or stale process memos) across tests."""
    yield
    set_gate_store(None)
    clear_gate_cache()


def _random_reduced_automaton(seed: int):
    """A reduced automaton the way the differential harness produces them:
    a random circuit prefix run over the all-basis-states precondition."""
    rng = random.Random(seed)
    num_qubits = rng.randint(1, 3)
    circuit = random_circuit(num_qubits, num_gates=rng.randint(0, 6), seed=seed)
    return run_circuit(circuit, all_basis_states_ta(num_qubits)).output


def _explicit_states_automaton(seed: int):
    """An *unreduced* automaton with redundant structure and rich amplitudes."""
    rng = random.Random(seed)
    num_qubits = rng.randint(1, 3)
    amplitudes = [
        AlgebraicNumber(1, 0, 0, 0, 0),
        AlgebraicNumber(-1, 0, 0, 0, 0),
        AlgebraicNumber(0, 1, 0, 0, 0),
        AlgebraicNumber(1, 0, 0, 0, 1),
    ]
    states = []
    for _ in range(rng.randint(1, 3)):
        state = QuantumState(num_qubits)
        for bits in range(2**num_qubits):
            if rng.random() < 0.4:
                assignment = tuple((bits >> i) & 1 for i in reversed(range(num_qubits)))
                state[assignment] = rng.choice(amplitudes)
        if state:
            states.append(state)
    if not states:
        states.append(QuantumState.zero_state(num_qubits))
    return from_quantum_states(states, reduce=False)


class TestPayloadCodec:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_is_structure_key_identity_on_reduced_automata(self, seed):
        automaton = _random_reduced_automaton(seed)
        rebuilt = serialization.from_payload(serialization.to_payload(automaton))
        assert rebuilt.structure_key() == automaton.structure_key()
        assert rebuilt.compact().key == automaton.compact().key

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_preserves_unreduced_structure_and_language(self, seed):
        automaton = _explicit_states_automaton(seed)
        rebuilt = serialization.from_payload(serialization.to_payload(automaton))
        assert rebuilt.structure_key() == automaton.structure_key()
        assert check_equivalence(automaton, rebuilt).equivalent

    def test_roundtrip_keeps_composition_tags(self):
        tagged = tag(basis_state_ta(2, "01"))
        rebuilt = serialization.from_payload(serialization.to_payload(tagged))
        assert rebuilt.structure_key() == tagged.structure_key()
        assert rebuilt.is_tagged()

    def test_payload_is_json_serialisable(self):
        payload = serialization.to_payload(all_basis_states_ta(3))
        assert serialization.from_payload(json.loads(json.dumps(payload))).num_qubits == 3

    def test_wrong_schema_rejected(self):
        payload = serialization.to_payload(basis_state_ta(1, "0"))
        payload["schema"] = serialization.PAYLOAD_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            serialization.from_payload(payload)

    def test_malformed_payload_rejected(self):
        payload = serialization.to_payload(basis_state_ta(1, "0"))
        del payload["leaves"]
        with pytest.raises(ValueError, match="malformed"):
            serialization.from_payload(payload)
        with pytest.raises(ValueError):
            serialization.from_payload("not a dict")


class TestFingerprint:
    def test_invariant_under_state_renaming(self):
        automaton = all_basis_states_ta(3)
        shifted = automaton.shifted(1000)
        assert automaton.structure_key() != shifted.structure_key()
        assert store_module.fingerprint(automaton) == store_module.fingerprint(shifted)

    def test_distinguishes_structures(self):
        assert store_module.fingerprint(basis_state_ta(2, "00")) != store_module.fingerprint(
            basis_state_ta(2, "01")
        )

    def test_codec_roundtrip_preserves_the_fingerprint(self):
        automaton = _random_reduced_automaton(7)
        rebuilt = serialization.from_payload(serialization.to_payload(automaton))
        assert store_module.fingerprint(rebuilt) == store_module.fingerprint(automaton)

    def test_cached_on_the_compact_form(self):
        automaton = all_basis_states_ta(2)
        first = store_module.fingerprint(automaton)
        assert automaton.compact()._digest == first
        assert store_module.fingerprint(automaton) is first


class TestAutomatonStore:
    def test_put_get_roundtrip_with_meta(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        automaton = _random_reduced_automaton(3)
        key = store.gate_key("abc", "h:0", "hybrid", True)
        assert store.get(key) is None
        assert store.put(key, automaton, {"used_permutation": False, "reduced": True})
        entry = store.get(key)
        assert entry.automaton.structure_key() == automaton.structure_key()
        assert entry.meta == {"used_permutation": False, "reduced": True}

    def test_fresh_store_object_reads_what_another_wrote(self, tmp_path):
        automaton = basis_state_ta(2, "10")
        key = AutomatonStore.gate_key("in", "x:1", "hybrid", True)
        AutomatonStore(str(tmp_path)).put(key, automaton)
        entry = AutomatonStore(str(tmp_path)).get(key)
        assert entry is not None
        assert check_equivalence(entry.automaton, automaton).equivalent

    def test_gate_key_depends_on_every_component(self):
        base = AutomatonStore.gate_key("fp", "h:0", "hybrid", True)
        assert AutomatonStore.gate_key("fp2", "h:0", "hybrid", True) != base
        assert AutomatonStore.gate_key("fp", "h:1", "hybrid", True) != base
        assert AutomatonStore.gate_key("fp", "h:0", "composition", True) != base
        assert AutomatonStore.gate_key("fp", "h:0", "hybrid", False) != base

    def test_corrupted_entry_is_a_miss_and_deleted(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "0"))
        path = store._path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ this is not json")
        fresh = AutomatonStore(str(tmp_path))  # empty LRU
        assert fresh.get(key) is None
        assert not os.path.exists(path)
        assert fresh.counters["rejected"] == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, all_basis_states_ta(3))
        path = store._path(key)
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[: len(content) // 2])
        assert AutomatonStore(str(tmp_path)).get(key) is None

    def test_torn_write_is_quarantined_then_recomputable(self, tmp_path):
        # a put interrupted mid-replace leaves a partial final file *and* an
        # orphaned temp file; the next read must quarantine, not trust either
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, all_basis_states_ta(2))
        path = store._path(key)
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[: len(content) // 3])
        orphan = os.path.join(os.path.dirname(path), "tmptorn.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write(content[: len(content) // 2])

        fresh = AutomatonStore(str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.counters["rejected"] == 1
        assert fresh.counters["quarantined"] == 1
        quarantine = os.path.join(str(tmp_path), store_module.QUARANTINE_DIR)
        name = os.path.basename(path)
        assert name in os.listdir(quarantine)
        with open(os.path.join(quarantine, name + ".reason"), encoding="utf-8") as handle:
            assert handle.read().strip()

        # recomputation republishes cleanly next to the quarantined copy
        assert fresh.put(key, all_basis_states_ta(2))
        assert fresh.get(key) is not None
        assert len(fresh) == 1  # the quarantined file is not a live entry
        stats = AutomatonStore.disk_stats(str(tmp_path))
        assert stats["quarantined_entries"] == 1
        assert stats["temp_files"] == 1

    def test_quarantine_survives_gc_and_never_resurfaces(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "0"))
        with open(store._path(key), "w", encoding="utf-8") as handle:
            handle.write("{ torn")
        fresh = AutomatonStore(str(tmp_path))
        assert fresh.get(key) is None
        outcome = fresh.gc(max_bytes=0)  # evict everything evictable
        assert outcome["remaining_bytes"] == 0
        quarantine = os.path.join(str(tmp_path), store_module.QUARANTINE_DIR)
        assert any(name.endswith(".json") for name in os.listdir(quarantine))
        assert fresh.get(key) is None  # still just a miss, never fatal

    def test_entry_schema_mismatch_is_a_miss(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "1"))
        path = store._path(key)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["store_schema"] = store_module.STORE_SCHEMA_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        fresh = AutomatonStore(str(tmp_path))
        assert fresh.get(key) is None
        assert not os.path.exists(path)

    def test_payload_schema_mismatch_inside_entry_is_a_miss(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "1"))
        path = store._path(key)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["automaton"]["schema"] = serialization.PAYLOAD_SCHEMA + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert AutomatonStore(str(tmp_path)).get(key) is None

    def test_version_stamp_mismatch_invalidates_the_whole_store(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "0"))
        with open(os.path.join(str(tmp_path), "STORE_VERSION.json"), "w") as handle:
            json.dump({"store_schema": -1, "payload_schema": -1}, handle)
        reopened = AutomatonStore(str(tmp_path))
        assert len(reopened) == 0
        assert reopened.get(key) is None
        # the stamp was rewritten to the current schema
        with open(os.path.join(str(tmp_path), "STORE_VERSION.json")) as handle:
            assert json.load(handle)["store_schema"] == store_module.STORE_SCHEMA_VERSION

    def test_memory_layer_is_lru_bounded(self, tmp_path):
        store = AutomatonStore(str(tmp_path), max_memory_entries=2)
        automaton = basis_state_ta(1, "0")
        keys = [store.gate_key("fp", f"g:{index}", "hybrid", True) for index in range(4)]
        for key in keys:
            store.put(key, automaton)
        assert len(store._memory) == 2
        assert keys[-1] in store._memory and keys[0] not in store._memory
        # evicted entries are still served from disk
        assert store.get(keys[0]) is not None

    def test_stats_and_len(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        assert len(store) == 0
        store.put(store.gate_key("a", "h:0", "hybrid", True), basis_state_ta(1, "0"))
        store.put(store.gate_key("b", "h:0", "hybrid", True), basis_state_ta(1, "1"))
        stats = store.stats()
        assert stats["entries"] == len(store) == 2
        assert stats["total_bytes"] > 0
        assert stats["publishes"] == 2

    def test_gc_shrinks_to_budget_oldest_first(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        keys = [store.gate_key("fp", f"g:{index}", "hybrid", True) for index in range(5)]
        for index, key in enumerate(keys):
            store.put(key, basis_state_ta(2, "01"))
            path = store._path(key)
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
        size = os.path.getsize(store._path(keys[0]))
        outcome = store.gc(max_bytes=2 * size)
        assert outcome["removed_entries"] == 3
        assert outcome["remaining_bytes"] <= 2 * size
        survivors = [key for key in keys if os.path.exists(store._path(key))]
        assert survivors == keys[-2:]

    def test_noop_gc_keeps_the_memory_layer_warm(self, tmp_path):
        # regression: gc used to clear the whole in-process LRU even when it
        # evicted nothing, cooling a warm daemon on every periodic gc tick
        store = AutomatonStore(str(tmp_path))
        keys = [store.gate_key("fp", f"g:{index}", "hybrid", True) for index in range(3)]
        for key in keys:
            store.put(key, basis_state_ta(1, "0"))
        assert len(store._memory) == 3
        outcome = store.gc(max_bytes=10**9)
        assert outcome["removed_entries"] == 0
        assert sorted(store._memory) == sorted(keys)

    def test_gc_invalidates_only_the_evicted_memory_keys(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        keys = [store.gate_key("fp", f"g:{index}", "hybrid", True) for index in range(4)]
        for index, key in enumerate(keys):
            store.put(key, basis_state_ta(2, "01"))
            os.utime(store._path(key), (1_000_000 + index, 1_000_000 + index))
        size = os.path.getsize(store._path(keys[0]))
        outcome = store.gc(max_bytes=2 * size)
        assert outcome["removed_entries"] == 2
        # survivors still answer from memory, evicted keys are gone from it
        assert sorted(store._memory) == sorted(keys[-2:])
        for key in keys[-2:]:
            assert store.get(key) is not None

    def test_counter_snapshot_reports_memory_without_touching_disk(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "0"))
        assert store.get(key) is not None
        snapshot = store.counter_snapshot()
        assert snapshot["directory"] == str(tmp_path)
        assert snapshot["memory_entries"] == 1
        assert snapshot["publishes"] == 1 and snapshot["hits"] == 1

    def test_clear_removes_everything(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        for index in range(3):
            store.put(store.gate_key("fp", f"g:{index}", "hybrid", True),
                      basis_state_ta(1, "0"))
        assert store.clear() == 3
        assert len(store) == 0

    def test_disk_hits_refresh_recency_so_gc_keeps_hot_entries(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        keys = [store.gate_key("fp", f"g:{index}", "hybrid", True) for index in range(3)]
        for index, key in enumerate(keys):
            store.put(key, basis_state_ta(2, "01"))
            os.utime(store._path(key), (1_000_000 + index, 1_000_000 + index))
        # read the oldest entry through a fresh store (no LRU shortcut): the
        # hit must bump its mtime past the others, so gc evicts them first
        fresh = AutomatonStore(str(tmp_path))
        assert fresh.get(keys[0]) is not None
        size = os.path.getsize(fresh._path(keys[0]))
        fresh.gc(max_bytes=size)
        assert os.path.exists(fresh._path(keys[0]))
        assert not os.path.exists(fresh._path(keys[1]))
        assert not os.path.exists(fresh._path(keys[2]))

    def test_orphaned_temp_files_are_counted_and_swept(self, tmp_path):
        store = AutomatonStore(str(tmp_path))
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "0"))
        shard = os.path.dirname(store._path(key))
        orphan = os.path.join(shard, "tmpdead.tmp")
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("x" * 128)
        stats = store.stats()
        assert stats["temp_files"] == 1
        assert stats["total_bytes"] >= 128
        outcome = store.gc(max_bytes=10**9)  # budget huge: only temps go
        assert outcome["removed_entries"] == 0
        assert outcome["removed_bytes"] >= 128
        assert not os.path.exists(orphan)
        # clear also sweeps a fresh orphan
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("y")
        assert store.clear() == 1
        assert not os.path.exists(orphan)

    def test_disk_stats_is_read_only(self, tmp_path):
        missing = tmp_path / "never-created"
        stats = AutomatonStore.disk_stats(str(missing))
        assert stats["entries"] == 0
        assert not missing.exists()
        # a mismatched stamp is reported, not acted upon
        store = AutomatonStore(str(tmp_path / "real"))
        store.put(store.gate_key("fp", "h:0", "hybrid", True), basis_state_ta(1, "0"))
        stamp_path = tmp_path / "real" / "STORE_VERSION.json"
        stamp_path.write_text(json.dumps({"store_schema": -1, "payload_schema": -1}))
        stats = AutomatonStore.disk_stats(str(tmp_path / "real"))
        assert stats["entries"] == 1  # still there — inspection must not wipe
        assert stats["disk_stamp"] == {"store_schema": -1, "payload_schema": -1}


class TestEngineStoreTier:
    def test_fresh_process_simulation_hits_the_store(self, tmp_path):
        bench = build_family("grover", 2)
        configure_gate_store(str(tmp_path))
        first = verify_triple(bench.precondition, bench.circuit, bench.postcondition)
        assert first.statistics.store_hits == 0
        assert first.statistics.store_publishes > 0
        assert first.statistics.store_publishes == first.statistics.store_misses

        # simulate a brand-new process: all per-process caches emptied, only
        # the on-disk store survives
        clear_gate_cache()
        clear_reduce_cache()
        clear_intern_tables()
        configure_gate_store(str(tmp_path))
        second = verify_triple(bench.precondition, bench.circuit, bench.postcondition)
        assert second.holds == first.holds
        assert second.statistics.store_misses == 0
        assert second.statistics.store_hits == first.statistics.store_publishes
        assert "store" in second.statistics.phase_seconds
        assert check_equivalence(second.output, first.output).equivalent

    def test_store_results_chain_across_modes_and_match_computation(self, tmp_path):
        circuit = random_circuit(2, num_gates=6, seed=11)
        precondition = all_basis_states_ta(2)
        baseline = run_circuit(circuit, precondition).output

        # publish pass: the process memo is warm from the baseline run, so it
        # must be cleared for the gate applications to reach (and fill) the store
        clear_gate_cache()
        configure_gate_store(str(tmp_path))
        run_circuit(circuit, precondition)
        clear_gate_cache()
        clear_reduce_cache()
        configure_gate_store(str(tmp_path))
        statistics = EngineStatistics()
        engine = CircuitEngine()
        automaton = precondition
        for gate in circuit.decomposed():
            automaton = engine.apply_gate(automaton, gate, statistics)
        assert statistics.store_hits > 0
        assert check_equivalence(automaton, baseline).equivalent

    def test_detached_store_records_nothing(self):
        bench = build_family("grover", 2)
        configure_gate_store(None)
        clear_gate_cache()
        result = verify_triple(bench.precondition, bench.circuit, bench.postcondition)
        assert result.statistics.store_hits == 0
        assert result.statistics.store_misses == 0
        assert result.statistics.store_publishes == 0

    def test_unusable_store_directory_degrades_to_no_store(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store directory should go")
        assert configure_gate_store(str(blocker)) is None
        bench = build_family("grover", 2)
        assert verify_triple(bench.precondition, bench.circuit, bench.postcondition).holds

    def test_statistics_to_dict_carries_store_counters(self, tmp_path):
        bench = build_family("grover", 2)
        configure_gate_store(str(tmp_path))
        clear_gate_cache()
        result = verify_triple(bench.precondition, bench.circuit, bench.postcondition)
        summary = result.statistics.to_dict()
        assert summary["store_publishes"] == result.statistics.store_publishes > 0
        assert set(summary) >= {"store_hits", "store_misses", "store_publishes"}
