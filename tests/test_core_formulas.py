"""Tests validating the symbolic update formulae (Theorem 4.1 of the paper).

The formulae of Table 1 are checked against the matrix semantics of Appendix A
via the independent exact simulator, on basis states and on random
superpositions.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, AlgebraicNumber
from repro.circuits import Gate, random_circuit
from repro.core.formulas import apply_formula_to_state, apply_gate_to_state, formula_for
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState

SINGLE_QUBIT_KINDS = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry"]


def random_exact_state(num_qubits: int, seed: int) -> QuantumState:
    """A deterministic pseudo-random exact state (not necessarily normalised)."""
    import random

    rng = random.Random(seed)
    state = QuantumState(num_qubits)
    for bits in itertools.product((0, 1), repeat=num_qubits):
        if rng.random() < 0.6:
            state[bits] = AlgebraicNumber(
                rng.randint(-2, 2), rng.randint(-2, 2), rng.randint(-2, 2), rng.randint(-2, 2), rng.randint(0, 2)
            )
    if not state:
        state[(0,) * num_qubits] = ONE
    return state


class TestFormulaStructure:
    def test_every_supported_gate_has_a_formula(self):
        for kind in SINGLE_QUBIT_KINDS:
            formula = formula_for(Gate(kind, (0,)))
            assert formula.gate_kind == kind
            assert formula.terms
        assert len(formula_for(Gate("cx", (0, 1))).terms) == 3
        assert len(formula_for(Gate("ccx", (0, 1, 2))).terms) == 4

    def test_h_and_rotations_divide_by_sqrt2(self):
        for kind in ("h", "rx", "ry"):
            assert formula_for(Gate(kind, (0,))).sqrt2_divisions == 1
        assert formula_for(Gate("x", (0,))).sqrt2_divisions == 0

    def test_swap_has_no_formula(self):
        with pytest.raises(ValueError):
            formula_for(Gate("swap", (0, 1)))

    def test_term_sign_validation(self):
        from repro.core.formulas import Term

        with pytest.raises(ValueError):
            Term(sign=2)


class TestTheorem41SingleQubit:
    """Formula semantics == matrix semantics on every 2-qubit basis state."""

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    @pytest.mark.parametrize("target", [0, 1])
    def test_on_basis_states(self, kind, target, simulator):
        gate = Gate(kind, (target,))
        for index in range(4):
            state = QuantumState.basis_state(2, index)
            assert apply_gate_to_state(gate, state) == simulator.apply_gate(state, gate)

    @pytest.mark.parametrize("kind", SINGLE_QUBIT_KINDS)
    def test_on_random_superpositions(self, kind, simulator):
        gate = Gate(kind, (1,))
        for seed in range(5):
            state = random_exact_state(3, seed)
            assert apply_gate_to_state(gate, state) == simulator.apply_gate(state, gate)


class TestTheorem41MultiQubit:
    @pytest.mark.parametrize("kind,qubits", [
        ("cx", (0, 1)), ("cx", (1, 0)), ("cx", (0, 2)),
        ("cz", (0, 1)), ("cz", (2, 1)),
        ("ccx", (0, 1, 2)), ("ccx", (2, 0, 1)),
    ])
    def test_on_all_basis_states(self, kind, qubits, simulator):
        gate = Gate(kind, qubits)
        for index in range(8):
            state = QuantumState.basis_state(3, index)
            assert apply_gate_to_state(gate, state) == simulator.apply_gate(state, gate)

    @pytest.mark.parametrize("kind,qubits", [("cx", (1, 0)), ("cz", (0, 2)), ("ccx", (0, 2, 1))])
    def test_on_random_superpositions(self, kind, qubits, simulator):
        gate = Gate(kind, qubits)
        for seed in range(5):
            state = random_exact_state(3, seed + 50)
            assert apply_gate_to_state(gate, state) == simulator.apply_gate(state, gate)


class TestWholeCircuits:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_formula_execution_matches_simulator_on_random_circuits(self, seed):
        simulator = StateVectorSimulator()
        circuit = random_circuit(3, num_gates=10, seed=seed)
        state = QuantumState.zero_state(3)
        expected = simulator.run(circuit, state)
        actual = state
        for gate in circuit:
            actual = apply_gate_to_state(gate, actual)
        assert actual == expected

    def test_unitarity_is_preserved(self, simulator):
        circuit = random_circuit(3, num_gates=20, seed=9)
        state = QuantumState.zero_state(3)
        for gate in circuit:
            state = apply_gate_to_state(gate, state)
        assert state.norm_squared() == ONE
