"""Tests for ``{P} C {Q}`` triple verification and witness diagnosis."""

import pytest

from repro.circuits import Circuit
from repro.core import (
    AnalysisMode,
    bell_postcondition,
    basis_state_precondition,
    classical_product_condition,
    states_condition,
    verify_triple,
    zero_state_precondition,
)
from repro.core.specs import bell_pair_state
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState
from repro.ta import all_basis_states_ta, basis_state_ta


class TestSpecHelpers:
    def test_zero_state_precondition(self):
        automaton = zero_state_precondition(3)
        assert automaton.accepts(QuantumState.zero_state(3))
        assert len(automaton.enumerate_states()) == 1

    def test_basis_state_precondition(self):
        automaton = basis_state_precondition(3, "101")
        assert automaton.accepts(QuantumState.basis_state(3, "101"))

    def test_classical_product_condition(self):
        automaton = classical_product_condition([{0, 1}, {1}])
        assert len(automaton.enumerate_states()) == 2

    def test_states_condition(self):
        automaton = states_condition([bell_pair_state()])
        assert automaton.accepts(bell_pair_state())

    def test_bell_pair_state_is_normalised(self):
        assert bell_pair_state().is_normalised()


class TestVerifyTriple:
    def test_bell_triple_holds(self, epr_circuit):
        result = verify_triple(zero_state_precondition(2), epr_circuit, bell_postcondition())
        assert result.holds
        assert result.witness is None
        assert result.check == "equivalence"
        assert bool(result)

    def test_buggy_bell_circuit_is_caught(self):
        buggy = Circuit(2).add("h", 0)  # missing the CNOT
        result = verify_triple(zero_state_precondition(2), buggy, bell_postcondition())
        assert not result.holds
        assert result.witness is not None
        assert result.witness_kind in ("reachable-but-forbidden", "unreachable-but-required")

    def test_witness_is_validated_by_the_simulator(self, simulator):
        buggy = Circuit(2).add("h", 0).add("cx", 0, 1).add("z", 1)
        result = verify_triple(zero_state_precondition(2), buggy, bell_postcondition())
        assert not result.holds
        if result.witness_kind == "reachable-but-forbidden":
            # the witness must really be the circuit's output on the precondition state
            actual = simulator.run(buggy, QuantumState.zero_state(2))
            assert result.witness == actual

    def test_inclusion_only_mode(self, epr_circuit):
        # outputs = {Bell}; Q = all basis states plus Bell -> inclusion holds, equality fails
        permissive = bell_postcondition().union(all_basis_states_ta(2))
        inclusion = verify_triple(
            zero_state_precondition(2), epr_circuit, permissive, inclusion_only=True
        )
        assert inclusion.holds
        assert inclusion.check == "inclusion"
        equality = verify_triple(zero_state_precondition(2), epr_circuit, permissive)
        assert not equality.holds
        assert equality.witness_kind == "unreachable-but-required"

    def test_composition_mode_agrees(self, epr_circuit):
        result = verify_triple(
            zero_state_precondition(2), epr_circuit, bell_postcondition(), mode=AnalysisMode.COMPOSITION
        )
        assert result.holds

    def test_identity_circuit_on_basis_set(self):
        circuit = Circuit(3).add("x", 0).add("x", 0)  # identity overall
        condition = classical_product_condition([{0, 1}, {0}, {0, 1}])
        result = verify_triple(condition, circuit, condition)
        assert result.holds

    def test_statistics_are_populated(self, epr_circuit):
        result = verify_triple(zero_state_precondition(2), epr_circuit, bell_postcondition())
        assert result.statistics.gates_total == 2
        assert result.comparison_seconds >= 0
        assert result.output.num_states > 0

    def test_constant_detection_use_case(self):
        # "finding constants": running X on every input of a free qubit maps the
        # set {|0>,|1>} onto itself, but maps {|0>} to {|1>} only.
        circuit = Circuit(1).add("x", 0)
        free_input = classical_product_condition([{0, 1}])
        assert verify_triple(free_input, circuit, free_input).holds
        zero_only = basis_state_ta(1, "0")
        result = verify_triple(zero_only, circuit, zero_only)
        assert not result.holds
