"""Tests for the typed service layer: problems, sessions, results, schema."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    API_VERSION,
    BugHuntProblem,
    CampaignProblem,
    CircuitSource,
    ConditionSpec,
    EquivalenceProblem,
    Problem,
    Result,
    SchemaError,
    Session,
    SessionConfig,
    SimulateProblem,
    ToolResult,
    VerifyProblem,
    validate_document,
)
from repro.api.results import CampaignResult, EquivalenceResult, VerifyResult
from repro.circuits import Circuit, save_qasm_file
from repro.core.engine import EngineStatistics
from repro.ta import basis_state_ta


def bell_circuit() -> Circuit:
    return Circuit(2).add("h", 0).add("cx", 0, 1)


def buggy_bell_circuit() -> Circuit:
    return Circuit(2).add("h", 0).add("cx", 0, 1).add("z", 1)


class TestCircuitSource:
    def test_exactly_one_source_is_required(self):
        with pytest.raises(ValueError):
            CircuitSource()
        with pytest.raises(ValueError):
            CircuitSource(qasm="x", family="bv")

    def test_size_needs_a_family(self):
        with pytest.raises(ValueError):
            CircuitSource(qasm="x", size=3)

    def test_circuit_round_trips_through_qasm(self):
        source = CircuitSource.from_circuit(bell_circuit())
        circuit, benchmark = source.resolve()
        assert benchmark is None
        assert circuit.num_gates == 2 and circuit.num_qubits == 2

    def test_family_source_resolves_benchmark(self):
        circuit, benchmark = CircuitSource.from_family("ghz", 3).resolve()
        assert benchmark is not None
        assert "GHZ" in benchmark.name
        assert circuit.num_qubits == 3

    def test_path_source(self, tmp_path):
        path = tmp_path / "bell.qasm"
        save_qasm_file(bell_circuit(), str(path))
        circuit, benchmark = CircuitSource.from_path(str(path)).resolve()
        assert benchmark is None
        assert circuit.num_gates == 2

    def test_dict_round_trip(self):
        source = CircuitSource.from_family("bv", 4)
        assert CircuitSource.from_dict(source.to_dict()) == source


class TestConditionSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ConditionSpec(kind="every-other-state")

    def test_value_constraints(self):
        with pytest.raises(ValueError):
            ConditionSpec(kind="basis")  # needs bits
        with pytest.raises(ValueError):
            ConditionSpec(kind="zero", value="00")  # takes none
        with pytest.raises(ValueError):
            ConditionSpec(kind="basis", value="012")  # malformed bits

    def test_zero_and_basis_resolve(self):
        from repro.states import QuantumState

        zero = ConditionSpec(kind="zero").resolve(2)
        assert zero.accepts(QuantumState.zero_state(2))
        basis = ConditionSpec(kind="basis", value="10").resolve(2)
        assert basis.accepts(QuantumState.basis_state(2, "10"))
        assert not basis.accepts(QuantumState.zero_state(2))

    def test_inline_ta_round_trips(self):
        spec = ConditionSpec.from_automaton(basis_state_ta(2, "01"))
        restored = ConditionSpec.from_dict(spec.to_dict())
        from repro.states import QuantumState

        assert restored.resolve(2).accepts(QuantumState.basis_state(2, "01"))


class TestProblemSerialization:
    def problems(self, tmp_path):
        path = tmp_path / "bell.qasm"
        save_qasm_file(bell_circuit(), str(path))
        return [
            VerifyProblem(circuit=CircuitSource.from_family("grover", 2)),
            VerifyProblem(
                circuit=CircuitSource.from_circuit(bell_circuit()),
                precondition=ConditionSpec(kind="zero"),
                postcondition=ConditionSpec.from_automaton(basis_state_ta(2, "00")),
                mode="composition",
                inclusion_only=True,
            ),
            EquivalenceProblem(
                first=CircuitSource.from_path(str(path)),
                second=CircuitSource.from_circuit(buggy_bell_circuit()),
                inputs=ConditionSpec(kind="basis", value="00"),
            ),
            BugHuntProblem(reference=CircuitSource.from_path(str(path)), inject_seed=3),
            SimulateProblem(circuit=CircuitSource.from_circuit(bell_circuit()), input_bits="10"),
            CampaignProblem(family="grover", mutants=5, mutation_kinds=("insert", "remove")),
        ]

    def test_every_problem_round_trips(self, tmp_path):
        for problem in self.problems(tmp_path):
            document = problem.to_dict()
            assert document["api_version"] == API_VERSION
            assert document["kind"].startswith("problem/")
            validate_document(document)
            assert Problem.from_json(problem.to_json()) == problem

    def test_kind_dispatch_rejects_wrong_class(self, tmp_path):
        verify = self.problems(tmp_path)[0]
        with pytest.raises(SchemaError):
            CampaignProblem.from_dict(verify.to_dict())

    def test_validation_failures(self):
        with pytest.raises(ValueError):
            VerifyProblem(circuit=CircuitSource.from_circuit(bell_circuit()))  # no P/Q
        with pytest.raises(ValueError):
            BugHuntProblem(reference=CircuitSource.from_circuit(bell_circuit()))  # no candidate
        with pytest.raises(ValueError):
            BugHuntProblem(
                reference=CircuitSource.from_circuit(bell_circuit()),
                candidate=CircuitSource.from_circuit(bell_circuit()),
                inject_seed=1,
            )  # both
        with pytest.raises(ValueError):
            CampaignProblem(family="")
        with pytest.raises(ValueError):
            VerifyProblem(circuit=CircuitSource.from_family("bv"), mode="turbo")


class TestSessionRuns:
    def test_verify_family_problem(self):
        with Session() as session:
            result = session.run(VerifyProblem(circuit=CircuitSource.from_family("bv", 3)))
        assert result.holds and result.exit_code == 0
        assert result.benchmark.startswith("BV")
        assert result.statistics.gates_total > 0

    def test_verify_explicit_conditions(self):
        problem = VerifyProblem(
            circuit=CircuitSource.from_circuit(Circuit(2).add("x", 0)),
            precondition=ConditionSpec(kind="zero"),
            postcondition=ConditionSpec.from_automaton(basis_state_ta(2, "10")),
        )
        with Session() as session:
            assert session.run(problem).holds

    def test_verify_violation_reports_witness(self):
        problem = VerifyProblem(
            circuit=CircuitSource.from_circuit(Circuit(2).add("x", 0)),
            precondition=ConditionSpec(kind="zero"),
            postcondition=ConditionSpec.from_automaton(basis_state_ta(2, "01")),
        )
        with Session() as session:
            result = session.run(problem)
        assert not result.holds and result.exit_code == 1
        assert result.witness is not None and result.witness_kind is not None

    def test_equivalence_problem(self):
        problem = EquivalenceProblem(
            first=CircuitSource.from_circuit(bell_circuit()),
            second=CircuitSource.from_circuit(buggy_bell_circuit()),
        )
        with Session() as session:
            result = session.run(problem)
        assert result.non_equivalent and result.exit_code == 1

    def test_bughunt_problem_with_injection(self):
        problem = BugHuntProblem(
            reference=CircuitSource.from_circuit(bell_circuit()), inject_seed=3
        )
        with Session() as session:
            result = session.run(problem)
        assert result.injected_mutation is not None
        assert result.exit_code in (0, 1)

    def test_simulate_problem(self):
        problem = SimulateProblem(circuit=CircuitSource.from_circuit(bell_circuit()))
        with Session() as session:
            result = session.run(problem)
        assert sorted(entry["basis"] for entry in result.amplitudes) == ["00", "11"]

    def test_campaign_problem(self, tmp_path):
        problem = CampaignProblem(
            family="grover", mutants=3, report_path=str(tmp_path / "report.jsonl")
        )
        with Session(cache_dir="", store_dir="") as session:
            result = session.run(problem)
        assert result.jobs == 4
        assert result.exit_code == 0

    def test_unknown_problem_type_rejected(self):
        with Session() as session:
            with pytest.raises(TypeError):
                session.run(object())

    def test_session_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(workers=0)


class TestSessionIsolation:
    """The acceptance-criterion leakage regression tests: nothing a session
    does may touch module-level runtime state."""

    def test_session_store_never_leaks_into_default_runtime(self, tmp_path):
        from repro.core.engine import active_gate_store, gate_cache_stats

        with Session(store_dir=str(tmp_path / "store")) as session:
            session.run(VerifyProblem(circuit=CircuitSource.from_family("ghz", 3)))
            assert session.runtime.store is not None
            assert active_gate_store() is None  # default runtime untouched
            assert gate_cache_stats()["size"] == 0  # default memo untouched
            assert session.runtime.memo_stats()["size"] > 0

    def test_two_sessions_have_independent_runtimes(self):
        first = Session()
        second = Session()
        try:
            first.run(VerifyProblem(circuit=CircuitSource.from_family("ghz", 3)))
            assert first.runtime.memo_stats()["size"] > 0
            assert second.runtime.memo_stats()["size"] == 0
        finally:
            first.close()
            second.close()

    def test_exiting_the_context_resets_the_runtime(self, tmp_path):
        with Session(store_dir=str(tmp_path / "store")) as session:
            session.run(VerifyProblem(circuit=CircuitSource.from_family("ghz", 3)))
        assert session.runtime.store is None
        assert session.runtime.memo_stats() == {"size": 0, "hits": 0, "misses": 0}

    def test_campaign_restores_session_store(self, tmp_path):
        """A campaign temporarily resolves its own store and must restore
        whatever the session had before."""
        with Session(cache_dir=str(tmp_path / "cache")) as session:
            assert session.runtime.store is None
            session.run(CampaignProblem(
                family="grover", mutants=2, report_path=str(tmp_path / "r.jsonl")
            ))
            assert session.runtime.store is None  # restored after the run

    def test_reset_gate_runtime_clears_memo_and_store(self, tmp_path):
        from repro.core import engine

        engine.configure_gate_store(str(tmp_path / "store"))
        from repro.core.verification import verify_triple
        from repro.benchgen import build_family

        benchmark = build_family("ghz", 3)
        verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        assert engine.active_gate_store() is not None
        assert engine.gate_cache_stats()["size"] > 0
        engine.reset_gate_runtime()
        assert engine.active_gate_store() is None
        assert engine.gate_cache_stats() == {"size": 0, "hits": 0, "misses": 0}


class TestResultSerialization:
    def test_verify_result_round_trip_preserves_documents(self):
        with Session() as session:
            result = session.run(VerifyProblem(circuit=CircuitSource.from_family("bv", 3)))
        document = result.to_json()
        restored = Result.from_json(document)
        assert isinstance(restored, VerifyResult)
        assert restored.to_json() == document
        assert isinstance(restored.statistics, EngineStatistics)

    def test_from_json_dispatches_on_kind(self):
        document = EquivalenceResult(non_equivalent=True, witness_side="first-only").to_json()
        restored = Result.from_json(document)
        assert isinstance(restored, EquivalenceResult)
        assert restored.exit_code == 1

    def test_typed_from_json_rejects_other_kinds(self):
        document = json.loads(EquivalenceResult().to_json())
        with pytest.raises(SchemaError):
            VerifyResult.from_dict(document)

    def test_foreign_api_version_is_rejected(self):
        document = json.loads(EquivalenceResult().to_json())
        document["api_version"] = API_VERSION + 1
        with pytest.raises(SchemaError):
            Result.from_dict(document)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SchemaError):
            Result.from_dict({"api_version": API_VERSION, "kind": "fortune"})

    def test_missing_required_field_is_rejected(self):
        document = json.loads(EquivalenceResult().to_json())
        del document["witness_side"]
        with pytest.raises(SchemaError):
            validate_document(document)

    def test_tool_result_round_trip(self):
        result = ToolResult(tool="stats", data={"qubits": 3, "histogram": {"h": 1}})
        restored = Result.from_json(result.to_json())
        assert isinstance(restored, ToolResult)
        assert restored == result

    def test_tool_result_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ToolResult(tool="horoscope", data={})

    def test_tool_result_failure_kinds_carry_exit_codes(self):
        """Deserialized documents report the same status the CLI exited with."""
        assert ToolResult(tool="baselines", data={"any_difference": True}).exit_code == 1
        assert ToolResult(tool="baselines", data={"any_difference": False}).exit_code == 0
        assert ToolResult(tool="campaign-matrix", data={"trustworthy": False}).exit_code == 1
        assert ToolResult(tool="campaign-matrix", data={"trustworthy": True}).exit_code == 0
        assert ToolResult(tool="stats", data={}).exit_code == 0

    def test_campaign_result_exit_code_contract(self):
        assert CampaignResult(violated=10).exit_code == 0  # catching mutants is the job
        assert CampaignResult(errors=1).exit_code == 1
        assert CampaignResult(reference_violated=True).exit_code == 1


class TestEngineStatisticsRoundTrip:
    """Satellite: ``to_dict ∘ from_dict ≡ id`` on the JSON-visible fields."""

    @given(
        samples=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                   allow_nan=False, allow_infinity=False),
                         min_size=0, max_size=20),
        permutation_flags=st.lists(st.booleans(), min_size=20, max_size=20),
        store_counts=st.tuples(st.integers(0, 99), st.integers(0, 99), st.integers(0, 99)),
        phases=st.dictionaries(
            st.sampled_from(["tag", "terms", "bin", "untag", "permutation", "reduce", "store"]),
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False),
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_to_dict_from_dict_is_identity(self, samples, permutation_flags, store_counts, phases):
        automaton = basis_state_ta(1, "0")
        statistics = EngineStatistics()
        for elapsed, used_permutation in zip(samples, permutation_flags):
            statistics.record(automaton, elapsed, used_permutation)
        statistics.store_hits, statistics.store_misses, statistics.store_publishes = store_counts
        for phase, seconds in phases.items():
            statistics.record_phase(phase, seconds)
        first = statistics.to_dict()
        second = EngineStatistics.from_dict(first).to_dict()
        assert second == first
        # and it survives an actual JSON round-trip too
        third = EngineStatistics.from_dict(json.loads(json.dumps(first))).to_dict()
        assert third == first

    def test_round_trip_of_a_real_run(self):
        with Session() as session:
            result = session.run(VerifyProblem(circuit=CircuitSource.from_family("grover", 2)))
        payload = result.statistics.to_dict()
        assert EngineStatistics.from_dict(payload).to_dict() == payload


class TestCampaignRecordSchema:
    def test_jsonl_records_carry_the_versioned_envelope(self, tmp_path):
        report = tmp_path / "report.jsonl"
        problem = CampaignProblem(family="grover", mutants=3, report_path=str(report))
        with Session(cache_dir="", store_dir="") as session:
            session.run(problem)
        with open(report, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert records
        for record in records:
            assert record["api_version"] == API_VERSION
            assert record["kind"] == "campaign-job"
            validate_document(record, kind="campaign-job")

    def test_record_statistics_round_trip_through_engine_statistics(self, tmp_path):
        report = tmp_path / "report.jsonl"
        problem = CampaignProblem(family="grover", mutants=2, report_path=str(report))
        with Session(cache_dir="", store_dir="") as session:
            session.run(problem)
        with open(report, "r", encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        payload = record["statistics"]
        assert EngineStatistics.from_dict(payload).to_dict() == payload


class TestMatrixThroughSession:
    def test_run_matrix_uses_session_configuration(self, tmp_path):
        from repro.campaign import MatrixSpec

        spec = MatrixSpec.from_mapping(
            {"families": "mctoffoli", "sizes": 2, "modes": "hybrid", "mutants": 2}
        )
        config = SessionConfig(
            cache_dir="",
            manifest_dir=str(tmp_path / "manifests"),
            report_dir=str(tmp_path / "reports"),
        )
        with Session(config) as session:
            result = session.run_matrix(spec)
        assert result.totals["jobs"] == 3
        assert os.path.exists(result.summary_path)
        assert result.trustworthy
