"""Round-trip tests for the struct-of-arrays compact export (kernel/arrays.py).

The contract: ``CompactArrays.from_compact(ta.compact()).to_automaton()``
rebuilds an automaton whose compact form has the *same key* as the source —
the export is lossless up to the compact relabelling, for every structural
shape the kernels operate on (empty, single-root, tagged-symbol, leaf-heavy).
"""

import random

import pytest

from repro.algebraic import ONE, SQRT2_INV
from repro.core.tagging import tag
from repro.states import QuantumState
from repro.ta import basis_product_ta, basis_state_ta
from repro.ta.automaton import TreeAutomaton
from repro.ta.construction import from_quantum_states
from repro.ta.kernel.arrays import CompactArrays, compact_arrays


def _round_trip(automaton: TreeAutomaton) -> CompactArrays:
    compact = automaton.compact()
    arrays = CompactArrays.from_compact(compact)
    rebuilt = arrays.to_automaton()
    assert rebuilt.compact().key == compact.key
    return arrays


def test_round_trip_empty_automaton():
    arrays = _round_trip(TreeAutomaton(2, [], {}, {}))
    assert arrays.num_rows == 0
    assert arrays.roots == ()
    assert arrays.leaf_state == ()


def test_round_trip_root_without_transitions():
    # a (useless) root state with no transitions must survive the trip:
    # num_states counts it even though no row references it
    arrays = _round_trip(TreeAutomaton(2, [0], {}, {}))
    assert arrays.num_states == 1
    assert arrays.num_rows == 0


def test_round_trip_single_root_basis_state():
    arrays = _round_trip(basis_state_ta(3, 5))
    assert len(arrays.roots) == 1
    # CSR offsets cover every state and close with the total row count
    assert len(arrays.row_start) == arrays.num_states + 1
    assert arrays.row_start[-1] == arrays.num_rows


def test_round_trip_leaf_only_automaton():
    leaf = TreeAutomaton(1, [0], {}, {0: ONE})
    arrays = _round_trip(leaf)
    assert arrays.num_rows == 0
    assert len(arrays.leaf_state) == 1
    assert arrays.amplitudes == (ONE,)


def test_round_trip_tagged_symbols():
    base = basis_state_ta(2, 1).union(basis_state_ta(2, 2)).relabelled()
    tagged = tag(base)
    arrays = _round_trip(tagged)
    # tagged symbols carry the tag component; the table must preserve them
    assert any(tags for _qubit, tags in arrays.symbols)


def test_round_trip_superposition_amplitudes():
    state = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
    arrays = _round_trip(from_quantum_states([state]))
    assert SQRT2_INV in arrays.amplitudes


def test_round_trip_randomized_unions():
    for seed in range(12):
        rng = random.Random(seed)
        num_qubits = rng.randint(2, 5)
        automaton = basis_state_ta(num_qubits, rng.randrange(2 ** num_qubits))
        for _ in range(rng.randint(0, 5)):
            automaton = automaton.union(
                basis_state_ta(num_qubits, rng.randrange(2 ** num_qubits))
            )
        _round_trip(automaton.relabelled())


def test_round_trip_basis_product():
    _round_trip(basis_product_ta(4, [{0, 1}, {0}, {1}, {0, 1}]))


def test_compact_arrays_helper_matches_explicit_path():
    automaton = basis_state_ta(3, 2)
    via_helper = compact_arrays(automaton)
    via_compact = CompactArrays.from_compact(automaton.compact())
    assert via_helper.parent == via_compact.parent
    assert via_helper.symbol_id == via_compact.symbol_id
    assert via_helper.left == via_compact.left
    assert via_helper.right == via_compact.right
    assert via_helper.roots == via_compact.roots


def test_rows_are_in_canonical_order():
    automaton = basis_state_ta(3, 0).union(basis_state_ta(3, 7)).relabelled()
    arrays = compact_arrays(automaton)
    assert list(arrays.parent) == sorted(arrays.parent)
    # within each parent the compact tuple order is preserved, and CSR slices
    # agree with the parent column
    for state in range(arrays.num_states):
        start, stop = arrays.row_start[state], arrays.row_start[state + 1]
        assert all(p == state for p in arrays.parent[start:stop])
