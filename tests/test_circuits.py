"""Tests for the circuit IR: gates, circuits, QASM I/O, random circuits, mutations."""

import pytest

from repro.circuits import (
    Circuit,
    Gate,
    QasmError,
    inject_random_gate,
    parse_qasm,
    random_benchmark_suite,
    random_circuit,
    remove_random_gate,
    swap_random_operands,
    to_qasm,
)
from repro.circuits.gates import GATE_ARITY, PERMUTATION_GATES


class TestGate:
    def test_basic_construction(self):
        gate = Gate("cx", (0, 1))
        assert gate.kind == "cx"
        assert gate.controls == (0,)
        assert gate.target == 1

    def test_kind_is_lowercased(self):
        assert Gate("H", (0,)).kind == "h"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Gate("frobnicate", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("x", (-1,))

    def test_swap_and_cswap_controls(self):
        assert Gate("swap", (0, 1)).controls == ()
        assert Gate("cswap", (2, 0, 1)).controls == (2,)

    def test_dagger(self):
        assert Gate("s", (0,)).dagger().kind == "sdg"
        assert Gate("tdg", (0,)).dagger().kind == "t"
        assert Gate("cx", (0, 1)).dagger() == Gate("cx", (0, 1))
        with pytest.raises(ValueError):
            Gate("rx", (0,)).dagger()

    def test_shift_and_remap(self):
        gate = Gate("ccx", (0, 1, 2))
        assert gate.shift(3).qubits == (3, 4, 5)
        assert gate.remap({0: 2, 2: 0}).qubits == (2, 1, 0)

    def test_permutation_flag(self):
        assert Gate("x", (0,)).is_permutation_gate
        assert not Gate("h", (0,)).is_permutation_gate
        assert PERMUTATION_GATES <= set(GATE_ARITY)

    def test_str(self):
        assert str(Gate("cx", (0, 1))) == "cx q[0], q[1]"


class TestCircuit:
    def test_append_and_len(self):
        circuit = Circuit(3)
        circuit.add("h", 0).add("cx", 0, 1).add("ccx", 0, 1, 2)
        assert len(circuit) == 3
        assert circuit.num_gates == 3
        assert circuit.count_kind("cx") == 1

    def test_append_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Circuit(2).add("x", 2)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_iteration_and_indexing(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        gates = list(circuit)
        assert gates[0].kind == "h"
        assert circuit[1].kind == "cx"
        assert isinstance(circuit[0:1], Circuit)
        assert circuit[0:1].num_gates == 1

    def test_used_qubits(self):
        circuit = Circuit(5).add("cx", 1, 3)
        assert circuit.used_qubits() == frozenset({1, 3})

    def test_copy_and_equality(self):
        circuit = Circuit(2).add("h", 0)
        clone = circuit.copy()
        assert clone == circuit
        clone.add("x", 1)
        assert clone != circuit

    def test_inverse_roundtrip_structure(self):
        circuit = Circuit(2).add("h", 0).add("t", 0).add("cx", 0, 1)
        inverse = circuit.inverse()
        assert [g.kind for g in inverse] == ["cx", "tdg", "h"]

    def test_concatenated(self):
        first = Circuit(2).add("h", 0)
        second = Circuit(2).add("x", 1)
        combined = first.concatenated(second)
        assert combined.num_gates == 2
        with pytest.raises(ValueError):
            first.concatenated(Circuit(3))

    def test_insert_and_without_gate(self):
        circuit = Circuit(2).add("h", 0).add("x", 1)
        circuit.insert(1, Gate("z", (0,)))
        assert [g.kind for g in circuit] == ["h", "z", "x"]
        trimmed = circuit.without_gate(1)
        assert [g.kind for g in trimmed] == ["h", "x"]

    def test_decomposed_expands_swap_and_cswap(self):
        circuit = Circuit(3).add("swap", 0, 1).add("cswap", 0, 1, 2)
        decomposed = circuit.decomposed()
        assert all(g.kind in ("cx", "ccx") for g in decomposed)
        assert decomposed.num_gates == 6

    def test_summary_and_repr(self):
        circuit = Circuit(2, name="demo").add("h", 0)
        assert "demo" in circuit.summary()
        assert "num_gates=1" in repr(circuit)


class TestQasm:
    def test_roundtrip(self):
        circuit = Circuit(3, name="roundtrip")
        circuit.add("h", 0).add("cx", 0, 1).add("ccx", 0, 1, 2).add("t", 2).add("rx", 1)
        parsed = parse_qasm(to_qasm(circuit))
        assert [g.kind for g in parsed] == [g.kind for g in circuit]
        assert [g.qubits for g in parsed] == [g.qubits for g in circuit]

    def test_parse_basic_program(self):
        program = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        // a comment
        cx q[0], q[1];
        barrier q[0], q[1];
        """
        circuit = parse_qasm(program)
        assert circuit.num_qubits == 2
        assert [g.kind for g in circuit] == ["h", "cx"]

    def test_multiple_registers_are_concatenated(self):
        program = 'OPENQASM 2.0;\nqreg a[1];\nqreg b[2];\ncx a[0], b[1];\n'
        circuit = parse_qasm(program)
        assert circuit.num_qubits == 3
        assert circuit[0].qubits == (0, 2)

    def test_missing_header_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1];\nx q[0];")

    def test_measure_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];")

    def test_unsupported_gate_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[1];\nu3(0,0,0) q[0];")

    def test_non_pi_over_2_rotation_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(0.3) q[0];")

    def test_out_of_range_reference_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[1];\nx q[1];")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("OPENQASM 2.0;\nqreg q[1];\nx r[0];")

    def test_file_roundtrip(self, tmp_path):
        from repro.circuits import load_qasm_file, save_qasm_file

        circuit = Circuit(2).add("h", 0).add("cz", 0, 1)
        path = tmp_path / "circuit.qasm"
        save_qasm_file(circuit, str(path))
        loaded = load_qasm_file(str(path))
        assert [g.kind for g in loaded] == ["h", "cz"]


class TestRandomAndMutations:
    def test_random_circuit_respects_ratio(self):
        circuit = random_circuit(10, seed=1)
        assert circuit.num_qubits == 10
        assert circuit.num_gates == 30

    def test_random_circuit_is_deterministic_per_seed(self):
        assert random_circuit(6, seed=42) == random_circuit(6, seed=42)
        assert random_circuit(6, seed=42) != random_circuit(6, seed=43)

    def test_random_circuit_small_registers(self):
        assert all(g.kind != "ccx" for g in random_circuit(2, seed=0, num_gates=20))
        assert all(len(g.qubits) == 1 for g in random_circuit(1, seed=0, num_gates=10))

    def test_random_benchmark_suite_names(self):
        suite = random_benchmark_suite(5, count=3)
        assert [c.name for c in suite] == ["5a", "5b", "5c"]

    def test_inject_random_gate(self):
        circuit = random_circuit(5, seed=3)
        buggy, record = inject_random_gate(circuit, seed=11)
        assert buggy.num_gates == circuit.num_gates + 1
        assert record.kind == "insert"
        assert 0 <= record.position <= circuit.num_gates
        assert str(record)

    def test_remove_random_gate(self):
        circuit = random_circuit(5, seed=3)
        buggy, record = remove_random_gate(circuit, seed=11)
        assert buggy.num_gates == circuit.num_gates - 1
        assert record.kind == "remove"

    def test_remove_from_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            remove_random_gate(Circuit(2))

    def test_swap_random_operands(self):
        circuit = Circuit(3).add("cx", 0, 1).add("h", 2)
        buggy, record = swap_random_operands(circuit, seed=0)
        assert buggy.num_gates == circuit.num_gates
        assert record.kind == "swap-operands"
        assert buggy[record.position].qubits == (1, 0)

    def test_swap_requires_multi_qubit_gate(self):
        with pytest.raises(ValueError):
            swap_random_operands(Circuit(2).add("h", 0))
