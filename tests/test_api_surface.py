"""Public-API surface snapshot: fail loudly on unreviewed drift.

The service layer (:mod:`repro.api`) is a wire contract — distributed
campaign workers, scripts, and the CLI all speak its schema.  These tests
pin the exported names, the document kinds, the per-kind required fields,
and the schema version, so any change to the surface shows up as an explicit
snapshot update in review (and forces the author to think about whether
``API_VERSION`` must be bumped).

When a test here fails because you *intentionally* changed the surface:

1. decide whether the change is compatible (pure addition) or breaking
   (renamed/removed field, changed meaning) — breaking changes must bump
   ``repro.api.schema.API_VERSION`` and be documented in ``docs/api.md``;
2. update the snapshot below in the same commit.
"""

import repro
import repro.api as api
from repro.api import schema
from repro.campaign.report import REPORT_FIELDS

#: the one and only place the expected schema version is spelled out in tests
EXPECTED_API_VERSION = 4

EXPECTED_API_ALL = [
    "API_VERSION",
    "BugHuntProblem",
    "BugHuntResult",
    "CampaignProblem",
    "CampaignResult",
    "CircuitSource",
    "ConditionSpec",
    "EquivalenceProblem",
    "EquivalenceResult",
    "ErrorResult",
    "FuzzProblem",
    "FuzzResult",
    "Problem",
    "Result",
    "SchemaError",
    "Session",
    "SessionConfig",
    "SimulateProblem",
    "SimulateResult",
    "ToolResult",
    "VerifyProblem",
    "VerifyResult",
    "document_kinds",
    "validate_document",
]

EXPECTED_DOCUMENT_KINDS = [
    "baselines",
    "bughunt",
    "cache-clear",
    "cache-gc",
    "cache-stats",
    "campaign",
    "campaign-job",
    "campaign-join",
    "campaign-ls",
    "campaign-matrix",
    "equivalence",
    "error",
    "export-ta",
    "fuzz",
    "fuzz-entry",
    "generate",
    "inject",
    "problem/bughunt",
    "problem/campaign",
    "problem/equivalence",
    "problem/fuzz",
    "problem/simulate",
    "problem/verify",
    "serve",
    "simulate",
    "stats",
    "verify",
]


class TestSurfaceSnapshot:
    def test_api_version_is_pinned(self):
        assert api.API_VERSION == EXPECTED_API_VERSION
        assert schema.API_VERSION == EXPECTED_API_VERSION

    def test_api_all_is_pinned(self):
        assert sorted(api.__all__) == EXPECTED_API_ALL

    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_document_kinds_are_pinned(self):
        assert list(schema.document_kinds()) == EXPECTED_DOCUMENT_KINDS

    def test_top_level_package_reexports_the_service_layer(self):
        for name in ("api", "API_VERSION", "Session", "SessionConfig", "Problem",
                     "CircuitSource", "ConditionSpec", "VerifyProblem",
                     "EquivalenceProblem", "BugHuntProblem", "SimulateProblem",
                     "CampaignProblem"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


class TestRequiredFieldContracts:
    def test_every_kind_has_a_field_contract(self):
        for kind in schema.RESULT_KINDS + schema.TOOL_RESULT_KINDS:
            assert kind in schema.REQUIRED_FIELDS, kind
        assert schema.CAMPAIGN_RECORD_KIND in schema.REQUIRED_FIELDS

    def test_typed_result_fields_match_the_schema_contract(self):
        """REQUIRED_FIELDS and the dataclasses can never drift apart."""
        from dataclasses import fields

        from repro.api.results import (
            BugHuntResult,
            CampaignResult,
            EquivalenceResult,
            ErrorResult,
            FuzzResult,
            SimulateResult,
            VerifyResult,
        )

        for cls in (VerifyResult, EquivalenceResult, BugHuntResult,
                    SimulateResult, CampaignResult, FuzzResult, ErrorResult):
            declared = {spec.name for spec in fields(cls)}
            assert declared == set(schema.REQUIRED_FIELDS[cls.KIND]), cls.KIND

    def test_campaign_record_contract_matches_report_fields(self):
        envelope = {"api_version", "kind"}
        assert set(REPORT_FIELDS) - envelope == set(
            schema.REQUIRED_FIELDS[schema.CAMPAIGN_RECORD_KIND]
        )

    def test_empty_results_emit_schema_valid_documents(self):
        from repro.api.results import (
            BugHuntResult,
            CampaignResult,
            EquivalenceResult,
            ErrorResult,
            FuzzResult,
            SimulateResult,
            VerifyResult,
        )

        for cls in (VerifyResult, EquivalenceResult, BugHuntResult,
                    SimulateResult, CampaignResult, FuzzResult, ErrorResult):
            schema.validate_document(cls().to_dict(), kind=cls.KIND)
