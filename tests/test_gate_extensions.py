"""Tests for the controlled-phase gate extensions (cs, csdg, ct, ctdg).

These gates are not part of the paper's Table 1 but are diagonal controlled
phases that the framework supports without any new machinery: the permutation
based encoding treats them like CZ (a scaled |11> branch) and the composition
based encoding gets them from a three-term update formula.  They are used by
the approximate-QFT benchmark generator.
"""

from __future__ import annotations

import pytest

from repro.algebraic import ONE, AlgebraicNumber, gate_matrix, is_unitary, matvec
from repro.baselines import PathSumChecker, PathSumVerdict
from repro.circuits import Circuit, Gate
from repro.circuits.qasm import parse_qasm, to_qasm
from repro.core import (
    AnalysisMode,
    apply_composition_gate,
    apply_gate_to_state,
    apply_permutation_gate,
    run_circuit,
    supports_permutation,
)
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState, bits_to_int, int_to_bits
from repro.ta import check_equivalence, from_quantum_state, from_quantum_states

NEW_GATES = ("cs", "csdg", "ct", "ctdg")

OMEGA = AlgebraicNumber(0, 1, 0, 0, 0)
OMEGA2 = AlgebraicNumber(0, 0, 1, 0, 0)


def _random_like_state(num_qubits: int) -> QuantumState:
    """A fixed, fully-populated unnormalised state with varied exact amplitudes."""
    state = QuantumState(num_qubits)
    for index in range(1 << num_qubits):
        bits = int_to_bits(index, num_qubits)
        state[bits] = AlgebraicNumber(index + 1, index % 3 - 1, (index * 7) % 5 - 2, -index % 4, index % 2)
    return state


# --------------------------------------------------------------------------- matrices
@pytest.mark.parametrize("kind", NEW_GATES)
def test_new_matrices_are_unitary(kind):
    assert is_unitary(gate_matrix(kind))


def test_cs_matrix_phase_entries():
    matrix = gate_matrix("cs")
    assert matrix[3][3] == OMEGA2
    assert gate_matrix("ct")[3][3] == OMEGA
    assert gate_matrix("csdg")[3][3] == -OMEGA2
    assert gate_matrix("ctdg")[3][3] == OMEGA.conjugate()
    for row in range(3):
        assert matrix[row][row] == ONE


def test_cs_equals_ct_squared_as_matrix():
    ct = gate_matrix("ct")
    from repro.algebraic import matmul

    assert matmul(ct, ct) == gate_matrix("cs")


# --------------------------------------------------------------------------- gate model
@pytest.mark.parametrize("kind", NEW_GATES)
def test_gate_model_accepts_new_kinds(kind):
    gate = Gate(kind, (0, 2))
    assert gate.target == 2
    assert gate.controls == (0,)
    assert gate.is_permutation_gate


def test_dagger_pairs():
    assert Gate("cs", (0, 1)).dagger() == Gate("csdg", (0, 1))
    assert Gate("csdg", (0, 1)).dagger() == Gate("cs", (0, 1))
    assert Gate("ct", (1, 0)).dagger() == Gate("ctdg", (1, 0))
    assert Gate("ctdg", (1, 0)).dagger() == Gate("ct", (1, 0))


def test_duplicate_operands_rejected():
    with pytest.raises(ValueError):
        Gate("cs", (1, 1))


# --------------------------------------------------------------------------- semantics
@pytest.mark.parametrize("kind", NEW_GATES)
@pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 2), (2, 0)])
def test_formula_matches_matrix_semantics(kind, qubits, simulator):
    num_qubits = 3
    gate = Gate(kind, qubits)
    state = _random_like_state(num_qubits)
    via_formula = apply_gate_to_state(gate, state)
    via_matrix = simulator.apply_gate(state, gate)
    assert via_formula == via_matrix


@pytest.mark.parametrize("kind", NEW_GATES)
def test_controlled_phase_only_touches_11_branch(kind, simulator):
    gate = Gate(kind, (0, 1))
    for index in range(4):
        state = QuantumState.basis_state(2, index)
        result = simulator.apply_gate(state, gate)
        bits = int_to_bits(index, 2)
        if bits == (1, 1):
            phase = {"cs": OMEGA2, "csdg": -OMEGA2, "ct": OMEGA, "ctdg": OMEGA.conjugate()}[kind]
            assert result[bits] == phase
        else:
            assert result[bits] == ONE
        assert result.nonzero_count() == 1


@pytest.mark.parametrize("kind", NEW_GATES)
@pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (2, 0)])
def test_permutation_and_composition_agree(kind, qubits, simulator):
    gate = Gate(kind, qubits)
    assert supports_permutation(gate)
    inputs = [QuantumState.basis_state(3, i) for i in (0, 3, 5, 7)]
    automaton = from_quantum_states(inputs)
    via_permutation = apply_permutation_gate(automaton, gate)
    via_composition = apply_composition_gate(automaton, gate)
    assert check_equivalence(via_permutation.reduce(), via_composition.reduce()).equivalent
    expected = from_quantum_states([simulator.apply_gate(state, gate) for state in inputs])
    assert check_equivalence(via_permutation.reduce(), expected).equivalent


@pytest.mark.parametrize("mode", [AnalysisMode.HYBRID, AnalysisMode.COMPOSITION])
def test_gate_and_its_dagger_cancel_on_ta(mode):
    circuit = Circuit(2).add("h", 0).add("h", 1).add("cs", 0, 1).add("csdg", 0, 1)
    precondition = from_quantum_state(QuantumState.zero_state(2))
    reference = Circuit(2).add("h", 0).add("h", 1)
    got = run_circuit(circuit, precondition, mode=mode).output
    expected = run_circuit(reference, precondition, mode=mode).output
    assert check_equivalence(got, expected).equivalent


def test_cs_equals_two_ct_via_engine():
    lhs = Circuit(2).add("h", 0).add("h", 1).add("cs", 0, 1)
    rhs = Circuit(2).add("h", 0).add("h", 1).add("ct", 0, 1).add("ct", 0, 1)
    precondition = from_quantum_state(QuantumState.zero_state(2))
    left = run_circuit(lhs, precondition).output
    right = run_circuit(rhs, precondition).output
    assert check_equivalence(left, right).equivalent


def test_cs_differs_from_cz_on_superposition():
    lhs = Circuit(2).add("h", 0).add("h", 1).add("cs", 0, 1)
    rhs = Circuit(2).add("h", 0).add("h", 1).add("cz", 0, 1)
    precondition = from_quantum_state(QuantumState.zero_state(2))
    left = run_circuit(lhs, precondition).output
    right = run_circuit(rhs, precondition).output
    result = check_equivalence(left, right)
    assert not result.equivalent
    assert result.counterexample is not None


# --------------------------------------------------------------------------- integrations
def test_qasm_round_trip_with_new_gates():
    circuit = (
        Circuit(3, name="ext")
        .add("h", 0)
        .add("cs", 0, 1)
        .add("ct", 1, 2)
        .add("csdg", 2, 0)
        .add("ctdg", 0, 2)
    )
    text = to_qasm(circuit)
    parsed = parse_qasm(text)
    assert list(parsed) == list(circuit)


def test_pathsum_proves_cs_equals_ct_ct():
    lhs = Circuit(2).add("cs", 0, 1)
    rhs = Circuit(2).add("ct", 0, 1).add("ct", 0, 1)
    result = PathSumChecker().check_equivalence(lhs, rhs)
    assert result.verdict == PathSumVerdict.EQUAL


def test_pathsum_detects_cs_vs_csdg():
    lhs = Circuit(2).add("h", 0).add("h", 1).add("cs", 0, 1)
    rhs = Circuit(2).add("h", 0).add("h", 1).add("csdg", 0, 1)
    result = PathSumChecker().check_equivalence(lhs, rhs)
    assert result.verdict != PathSumVerdict.EQUAL


def test_dense_and_sparse_simulators_agree_on_new_gates():
    from repro.simulator.dense import simulate_dense

    circuit = Circuit(3).add("h", 0).add("h", 1).add("h", 2).add("cs", 0, 1).add("ct", 1, 2).add("csdg", 0, 2)
    sparse = StateVectorSimulator().run(circuit, QuantumState.zero_state(3))
    dense = simulate_dense(circuit)
    for index in range(8):
        bits = int_to_bits(index, 3)
        assert abs(sparse[bits].to_complex() - dense[bits_to_int(bits)]) < 1e-9
