"""Differential test harness: TA engine vs. statevector vs. path-sum baseline
vs. decision-diagram simulator.

Seeded random circuits (<= 6 qubits) are executed *gate by gate* through four
independent semantics:

* the tree-automaton engine in each :class:`~repro.core.engine.AnalysisMode`,
* the exact sparse statevector simulator (matrix semantics, Appendix A),
* an evaluator over the path-sum baseline's symbolic execution (summing the
  phase-polynomial representation over all path-variable assignments),
* the SliQSim-style decision-diagram simulator
  (:mod:`repro.simulator.decision_diagram`), whose cofactor-based gate
  application shares no code with either the TA kernel or the sparse matrix
  semantics.

After every gate the TA language must be exactly the singleton set containing
the simulator state, and the evaluated path sum and expanded diagram must
denote the same vector.  Any divergence pinpoints the first gate where two
semantics disagree.  The measurement classes additionally cross-check the TA
measurement *queries* (probability bounds, certainty, the post-measurement
automaton of Algorithm 4) against the exact measurement semantics on the
simulator state.

The gate-by-gate comparison helpers were promoted to
:mod:`repro.fuzz.oracles` (where ``repro fuzz`` runs them against seeded
random mutants); this module keeps the hand-picked fixed circuits in tier-1
and pins the evaluator itself against closed-form states.
"""

import random

import pytest

from repro.algebraic import ZERO
from repro.baselines import PathSumChecker
from repro.circuits import Circuit, random_circuit
from repro.core.engine import AnalysisMode, CircuitEngine
from repro.core.queries import (
    measurement_probability_bounds,
    outcome_is_certain,
    post_measurement_automaton,
)
from repro.fuzz.oracles import (
    assert_states_close,
    evaluate_path_sum as _evaluate_path_sum,
    prefix_path_sum_states as _prefix_path_sum_states,
    random_permutation_circuit as _random_permutation_circuit,
)
from repro.simulator import StateVectorSimulator
from repro.simulator.decision_diagram import DDState, DecisionDiagramSimulator
from repro.simulator.measurement import measurement_probability
from repro.states import QuantumState
from repro.ta import basis_state_ta


def _drive(circuit: Circuit, input_bits, mode: str) -> None:
    """Run all four semantics gate by gate and assert exact agreement."""
    engine = CircuitEngine(mode=mode)
    simulator = StateVectorSimulator()
    dd_simulator = DecisionDiagramSimulator()
    automaton = basis_state_ta(circuit.num_qubits, input_bits)
    state = QuantumState.basis_state(circuit.num_qubits, input_bits)
    diagram = DDState.basis_state(circuit.num_qubits, input_bits, dd_simulator.manager)
    pathsum_states = _prefix_path_sum_states(circuit, input_bits)
    for position, gate in enumerate(circuit.decomposed()):
        automaton = engine.apply_gate(automaton, gate)
        state = simulator.apply_gate(state, gate)
        diagram = dd_simulator.apply_gate(diagram, gate)
        enumerated = automaton.enumerate_states(limit=4)
        assert enumerated == [state], (
            f"TA/{mode} diverged from the simulator after gate {position} ({gate}): "
            f"{enumerated} != {state}"
        )
        assert_states_close(pathsum_states[position], state)
        expanded = diagram.to_quantum_state()
        assert expanded == state, (
            f"decision diagram diverged from the simulator after gate {position} "
            f"({gate}): {expanded} != {state}"
        )


def _seeded_inputs(seed: int, num_qubits: int):
    rng = random.Random(seed * 7919 + 13)
    return tuple(rng.randint(0, 1) for _ in range(num_qubits))


class TestDifferentialHybrid:
    @pytest.mark.parametrize("seed", range(8))
    def test_hybrid_agrees_with_both_baselines(self, seed):
        rng = random.Random(seed)
        num_qubits = rng.randint(2, 6)
        circuit = random_circuit(num_qubits, num_gates=8, seed=seed)
        _drive(circuit, _seeded_inputs(seed, num_qubits), AnalysisMode.HYBRID)


class TestDifferentialComposition:
    @pytest.mark.parametrize("seed", range(5))
    def test_composition_agrees_with_both_baselines(self, seed):
        rng = random.Random(seed + 100)
        num_qubits = rng.randint(2, 4)
        circuit = random_circuit(num_qubits, num_gates=6, seed=seed + 100)
        _drive(circuit, _seeded_inputs(seed, num_qubits), AnalysisMode.COMPOSITION)


class TestDifferentialPermutation:
    @pytest.mark.parametrize("seed", range(8))
    def test_permutation_agrees_with_both_baselines(self, seed):
        rng = random.Random(seed + 200)
        num_qubits = rng.randint(2, 6)
        circuit = _random_permutation_circuit(num_qubits, num_gates=10, seed=seed + 200)
        _drive(circuit, _seeded_inputs(seed, num_qubits), AnalysisMode.PERMUTATION)


def _final_automaton_and_state(seed: int, mode: str):
    """Run one seeded random circuit to the end under ``mode``; return (TA, state)."""
    rng = random.Random(seed + 300)
    num_qubits = rng.randint(2, 5)
    circuit = random_circuit(num_qubits, num_gates=8, seed=seed + 300)
    input_bits = _seeded_inputs(seed, num_qubits)
    engine = CircuitEngine(mode=mode)
    simulator = StateVectorSimulator()
    automaton = basis_state_ta(num_qubits, input_bits)
    state = QuantumState.basis_state(num_qubits, input_bits)
    for gate in circuit.decomposed():
        automaton = engine.apply_gate(automaton, gate)
        state = simulator.apply_gate(state, gate)
    return automaton, state


class TestDifferentialMeasurement:
    """Measurement queries on the output TA vs. exact measurement semantics.

    The output language is the singleton {simulator state}, so the TA-level
    bounds must collapse to that state's exact probabilities, certainty must
    coincide, and the post-measurement automaton (the paper's restriction
    applied as a standalone transformer) must accept exactly the un-normalised
    collapsed state.
    """

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mode", [AnalysisMode.HYBRID, AnalysisMode.COMPOSITION])
    def test_probability_bounds_match_the_simulator(self, seed, mode):
        automaton, state = _final_automaton_and_state(seed, mode)
        for qubit in range(state.num_qubits):
            for value in (0, 1):
                expected = measurement_probability(state, qubit, value)
                low, high = measurement_probability_bounds(automaton, qubit, value)
                assert abs(low - expected) < 1e-9 and abs(high - expected) < 1e-9, (
                    f"bounds for qubit {qubit}={value} diverged: "
                    f"[{low}, {high}] != {expected}"
                )

    @pytest.mark.parametrize("seed", range(6))
    def test_certainty_matches_the_simulator(self, seed):
        automaton, state = _final_automaton_and_state(seed, AnalysisMode.HYBRID)
        for qubit in range(state.num_qubits):
            for value in (0, 1):
                expected = measurement_probability(state, qubit, 1 - value) < 1e-12
                assert outcome_is_certain(automaton, qubit, value) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_post_measurement_automaton_matches_collapse(self, seed):
        automaton, state = _final_automaton_and_state(seed, AnalysisMode.HYBRID)
        for qubit in range(state.num_qubits):
            for value in (0, 1):
                collapsed = post_measurement_automaton(automaton, qubit, value)
                # the un-normalised collapse: survivors keep their amplitude,
                # the complementary branch is zeroed (zero entries drop out)
                expected = QuantumState(state.num_qubits, {
                    bits: amplitude
                    for bits, amplitude in state.items()
                    if bits[qubit] == value
                })
                assert collapsed.enumerate_states(limit=4) == [expected]


class TestPathSumEvaluator:
    """Sanity checks pinning the evaluator itself against closed-form states."""

    def test_bell_state(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        checker = PathSumChecker()
        state = _evaluate_path_sum(checker.symbolic_execution(circuit), 2, (0, 0))
        expected = StateVectorSimulator().run(circuit, QuantumState.zero_state(2))
        assert_states_close(state, expected)

    def test_interference_cancels(self):
        # H H = identity: the |1> branch amplitudes must cancel exactly
        circuit = Circuit(1).add("h", 0).add("h", 0)
        checker = PathSumChecker()
        state = _evaluate_path_sum(checker.symbolic_execution(circuit), 1, (0,))
        assert_states_close(state, QuantumState.zero_state(1))
        assert state[(1,)] == ZERO
