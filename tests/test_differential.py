"""Differential test harness: TA engine vs. statevector vs. path-sum baseline.

Seeded random circuits (<= 6 qubits) are executed *gate by gate* through three
independent semantics:

* the tree-automaton engine in each :class:`~repro.core.engine.AnalysisMode`,
* the exact sparse statevector simulator (matrix semantics, Appendix A),
* an evaluator over the path-sum baseline's symbolic execution (summing the
  phase-polynomial representation over all path-variable assignments).

After every gate the TA language must be exactly the singleton set containing
the simulator state, and the evaluated path sum must denote the same vector.
Any divergence pinpoints the first gate where two semantics disagree.
"""

import itertools
import random

import pytest

from repro.algebraic import AlgebraicNumber, ZERO
from repro.baselines import PathSumChecker
from repro.circuits import Circuit, Gate, random_circuit
from repro.core.engine import AnalysisMode, CircuitEngine
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState
from repro.ta import basis_state_ta

#: gates the permutation-based encoding supports with ascending operands
_PERMUTATION_POOL = ("x", "y", "z", "s", "sdg", "t", "tdg", "cx", "cz", "ccx")


def assert_states_close(left: QuantumState, right: QuantumState, tolerance: float = 1e-9) -> None:
    """Assert two exact states denote (numerically) the same vector."""
    assert left.num_qubits == right.num_qubits
    keys = {bits for bits, _ in left.items()} | {bits for bits, _ in right.items()}
    for bits in keys:
        delta = abs(left[bits].to_complex() - right[bits].to_complex())
        assert delta < tolerance, f"amplitudes differ at {bits}: {left[bits]} vs {right[bits]}"


def _random_permutation_circuit(num_qubits: int, num_gates: int, seed: int) -> Circuit:
    """A random circuit every gate of which the permutation encoding handles."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"perm_random_{seed}")
    pool = [kind for kind in _PERMUTATION_POOL if num_qubits >= {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)]
    for _ in range(num_gates):
        kind = rng.choice(pool)
        arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
        qubits = tuple(sorted(rng.sample(range(num_qubits), arity)))
        circuit.append(Gate(kind, qubits))
    return circuit


def _evaluate_bool(poly, environment) -> int:
    """Evaluate a path-sum Boolean polynomial (XOR of ANDs) over 0/1 values."""
    return sum(all(environment[v] for v in monomial) for monomial in poly.monomials) % 2


def _evaluate_path_sum(path_sum, num_qubits: int, input_bits) -> QuantumState:
    """Sum a symbolic path sum over all path-variable assignments (exact)."""
    state = QuantumState(num_qubits)
    normalisation = AlgebraicNumber(1, 0, 0, 0, path_sum.sqrt2_factors)
    variables = list(path_sum.path_variables)
    base = {f"x{i}": bit for i, bit in enumerate(input_bits)}
    for assignment in itertools.product((0, 1), repeat=len(variables)):
        environment = dict(base)
        environment.update(zip(variables, assignment))
        bits = tuple(_evaluate_bool(poly, environment) for poly in path_sum.outputs)
        units = path_sum.global_phase
        for monomial, coefficient in path_sum.phase.terms.items():
            if all(environment[v] for v in monomial):
                units += coefficient
        amplitude = AlgebraicNumber.omega_power(units % 8) * normalisation
        state[bits] = state[bits] + amplitude
    return state


def _prefix_path_sum_states(circuit: Circuit, input_bits):
    """Path-sum-evaluated states after every gate of ``circuit``."""
    checker = PathSumChecker()
    states = []
    for length in range(1, circuit.num_gates + 1):
        path_sum = checker.symbolic_execution(circuit[:length])
        states.append(_evaluate_path_sum(path_sum, circuit.num_qubits, input_bits))
    return states


def _drive(circuit: Circuit, input_bits, mode: str) -> None:
    """Run all three semantics gate by gate and assert exact agreement."""
    engine = CircuitEngine(mode=mode)
    simulator = StateVectorSimulator()
    automaton = basis_state_ta(circuit.num_qubits, input_bits)
    state = QuantumState.basis_state(circuit.num_qubits, input_bits)
    pathsum_states = _prefix_path_sum_states(circuit, input_bits)
    for position, gate in enumerate(circuit.decomposed()):
        automaton = engine.apply_gate(automaton, gate)
        state = simulator.apply_gate(state, gate)
        enumerated = automaton.enumerate_states(limit=4)
        assert enumerated == [state], (
            f"TA/{mode} diverged from the simulator after gate {position} ({gate}): "
            f"{enumerated} != {state}"
        )
        assert_states_close(pathsum_states[position], state)


def _seeded_inputs(seed: int, num_qubits: int):
    rng = random.Random(seed * 7919 + 13)
    return tuple(rng.randint(0, 1) for _ in range(num_qubits))


class TestDifferentialHybrid:
    @pytest.mark.parametrize("seed", range(8))
    def test_hybrid_agrees_with_both_baselines(self, seed):
        rng = random.Random(seed)
        num_qubits = rng.randint(2, 6)
        circuit = random_circuit(num_qubits, num_gates=8, seed=seed)
        _drive(circuit, _seeded_inputs(seed, num_qubits), AnalysisMode.HYBRID)


class TestDifferentialComposition:
    @pytest.mark.parametrize("seed", range(5))
    def test_composition_agrees_with_both_baselines(self, seed):
        rng = random.Random(seed + 100)
        num_qubits = rng.randint(2, 4)
        circuit = random_circuit(num_qubits, num_gates=6, seed=seed + 100)
        _drive(circuit, _seeded_inputs(seed, num_qubits), AnalysisMode.COMPOSITION)


class TestDifferentialPermutation:
    @pytest.mark.parametrize("seed", range(8))
    def test_permutation_agrees_with_both_baselines(self, seed):
        rng = random.Random(seed + 200)
        num_qubits = rng.randint(2, 6)
        circuit = _random_permutation_circuit(num_qubits, num_gates=10, seed=seed + 200)
        _drive(circuit, _seeded_inputs(seed, num_qubits), AnalysisMode.PERMUTATION)


class TestPathSumEvaluator:
    """Sanity checks pinning the evaluator itself against closed-form states."""

    def test_bell_state(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        checker = PathSumChecker()
        state = _evaluate_path_sum(checker.symbolic_execution(circuit), 2, (0, 0))
        expected = StateVectorSimulator().run(circuit, QuantumState.zero_state(2))
        assert_states_close(state, expected)

    def test_interference_cancels(self):
        # H H = identity: the |1> branch amplitudes must cancel exactly
        circuit = Circuit(1).add("h", 0).add("h", 0)
        checker = PathSumChecker()
        state = _evaluate_path_sum(checker.symbolic_execution(circuit), 1, (0,))
        assert_states_close(state, QuantumState.zero_state(1))
        assert state[(1,)] == ZERO
