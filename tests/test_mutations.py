"""Tests for the expanded mutation taxonomy (:mod:`repro.circuits.mutations`).

The taxonomy is the fuzzer's fault model, so its contract is strict:

* every operator is deterministic under an explicit seed, and passing an
  explicit ``random.Random(seed)`` consumes the *identical* stream (so the
  campaign planner's move to threaded rngs changed no existing plan);
* every :class:`MutationRecord` round-trips losslessly through JSON;
* the mutants themselves are structurally what each fault model promises.
"""

from __future__ import annotations

import random

import pytest

from repro.campaign.plan import MutationPlan
from repro.circuits import (
    MUTATION_OPERATORS,
    Circuit,
    MutationRecord,
    duplicate_random_gate,
    flip_random_phase,
    random_circuit,
    reorder_random_qubits,
    swap_random_operands,
    transpose_random_adjacent,
)
from repro.circuits.mutations import _PHASE_ERRORS


def _seed_circuit(seed: int = 0) -> Circuit:
    # append a two-qubit and a phase gate so every operator has a candidate
    return random_circuit(3, num_gates=8, seed=seed).add("cx", 0, 1).add("t", 0)


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(MUTATION_OPERATORS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_same_seed_same_mutant(self, kind, seed):
        operator = MUTATION_OPERATORS[kind]
        circuit = _seed_circuit(seed)
        first_circuit, first_record = operator(circuit, seed=seed)
        second_circuit, second_record = operator(circuit, seed=seed)
        assert list(first_circuit.gates) == list(second_circuit.gates)
        assert first_record == second_record

    @pytest.mark.parametrize("kind", sorted(MUTATION_OPERATORS))
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_explicit_rng_consumes_the_seed_stream(self, kind, seed):
        """``op(c, seed=s)`` and ``op(c, rng=Random(s))`` are byte-identical —
        the compatibility guarantee that kept campaign plans stable when the
        operators gained the ``rng`` parameter."""
        operator = MUTATION_OPERATORS[kind]
        circuit = _seed_circuit(seed)
        via_seed = operator(circuit, seed=seed)
        via_rng = operator(circuit, rng=random.Random(seed))
        assert list(via_seed[0].gates) == list(via_rng[0].gates)
        assert via_seed[1] == via_rng[1]

    def test_mutants_do_not_modify_the_input_circuit(self):
        circuit = _seed_circuit(1)
        gates_before = list(circuit.gates)
        for kind, operator in MUTATION_OPERATORS.items():
            operator(circuit, seed=5)
            assert list(circuit.gates) == gates_before, kind


class TestRecords:
    @pytest.mark.parametrize("kind", sorted(MUTATION_OPERATORS))
    def test_record_json_round_trip_is_lossless(self, kind):
        _, record = MUTATION_OPERATORS[kind](_seed_circuit(2), seed=9)
        restored = MutationRecord.from_json(record.to_json())
        assert restored == record
        assert restored.kind == record.kind == kind
        assert restored.position == record.position
        assert restored.gate == record.gate

    def test_record_dict_shape(self):
        _, record = MUTATION_OPERATORS["insert"](_seed_circuit(0), seed=0)
        document = record.to_dict()
        assert set(document) == {"kind", "position", "gate"}
        assert set(document["gate"]) == {"kind", "qubits"}

    def test_record_str_names_kind_and_position(self):
        _, record = MUTATION_OPERATORS["remove"](_seed_circuit(0), seed=0)
        assert str(record).startswith(f"remove at position {record.position}")


class TestFaultModels:
    def test_phase_error_flips_to_the_twin(self):
        circuit = Circuit(2).add("h", 0).add("t", 0).add("cx", 0, 1)
        mutant, record = flip_random_phase(circuit, seed=0)
        assert record.kind == "phase-error"
        assert mutant.num_gates == circuit.num_gates
        original = circuit[record.position]
        assert mutant[record.position].kind == _PHASE_ERRORS[original.kind]

    def test_phase_error_requires_a_phase_gate(self):
        with pytest.raises(ValueError):
            flip_random_phase(Circuit(1).add("h", 0).add("x", 0), seed=0)

    def test_reorder_qubits_remaps_consistently(self):
        circuit = Circuit(3).add("h", 0).add("cx", 0, 1).add("x", 2)
        mutant, record = reorder_random_qubits(circuit, seed=1)
        assert record.kind == "reorder-qubits"
        assert mutant.num_gates == circuit.num_gates
        # some gate must actually have moved
        assert list(mutant.gates) != list(circuit.gates)

    def test_reorder_qubits_needs_two_qubits(self):
        with pytest.raises(ValueError):
            reorder_random_qubits(Circuit(1).add("x", 0), seed=0)

    def test_off_by_one_duplicates_in_place(self):
        circuit = _seed_circuit(4)
        mutant, record = duplicate_random_gate(circuit, seed=4)
        assert record.kind == "off-by-one"
        assert mutant.num_gates == circuit.num_gates + 1
        assert mutant[record.position] == mutant[record.position - 1]

    def test_transpose_swaps_adjacent_gates(self):
        circuit = _seed_circuit(5)
        mutant, record = transpose_random_adjacent(circuit, seed=5)
        assert record.kind == "transpose"
        assert mutant.num_gates == circuit.num_gates
        position = record.position
        assert mutant[position] == circuit[position + 1]
        assert mutant[position + 1] == circuit[position]

    def test_swap_operands_changes_exactly_one_gate(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        mutant, record = swap_random_operands(circuit, seed=0)
        assert record.kind == "swap-operands"
        assert mutant[record.position].qubits != circuit[record.position].qubits
        assert sorted(mutant[record.position].qubits) == sorted(circuit[record.position].qubits)


class TestPlanStability:
    def test_plan_mutants_are_deterministic(self):
        plan = MutationPlan(num_mutants=6, kinds=tuple(MUTATION_OPERATORS), base_seed=3)
        circuit = _seed_circuit(0)
        first = [(kind, seed, list(mutant.gates), record)
                 for _, kind, seed, mutant, record in plan.mutants(circuit)]
        second = [(kind, seed, list(mutant.gates), record)
                  for _, kind, seed, mutant, record in plan.mutants(circuit)]
        assert first == second

    def test_insert_plan_matches_the_pre_rng_stream(self):
        """The planner now passes ``rng=Random(seed)``; the mutants must be
        byte-identical to calling the operator with the bare seed (what PR 4
        cached verdicts were keyed on)."""
        from repro.circuits import inject_random_gate

        plan = MutationPlan(num_mutants=4, kinds=("insert",), base_seed=11)
        circuit = _seed_circuit(6)
        for index, kind, seed, mutant, record in plan.mutants(circuit):
            assert kind == "insert"
            assert seed == 11 + index
            expected, expected_record = inject_random_gate(circuit, seed=seed)
            assert list(mutant.gates) == list(expected.gates)
            assert record == str(expected_record)
