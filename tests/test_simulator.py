"""Tests for the exact sparse simulator, the dense simulator and measurement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, SQRT2_INV
from repro.circuits import Circuit, Gate, random_circuit
from repro.simulator import (
    StateVectorSimulator,
    circuit_unitary,
    collapse,
    measurement_probability,
    outcome_distribution,
    simulate_basis_states,
    simulate_circuit,
    simulate_dense,
    state_fidelity,
)
from repro.states import QuantumState


class TestStateVectorSimulator:
    def test_x_gate(self, simulator):
        state = simulator.apply_gate(QuantumState.zero_state(2), Gate("x", (1,)))
        assert state == QuantumState.basis_state(2, "01")

    def test_hadamard_creates_superposition(self, simulator):
        state = simulator.apply_gate(QuantumState.zero_state(1), Gate("h", (0,)))
        assert state[(0,)] == SQRT2_INV
        assert state[(1,)] == SQRT2_INV

    def test_bell_preparation(self, simulator, epr_circuit):
        state = simulator.run(epr_circuit, QuantumState.zero_state(2))
        assert state == QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})

    def test_swap_gate(self, simulator):
        state = simulator.apply_gate(QuantumState.basis_state(2, "10"), Gate("swap", (0, 1)))
        assert state == QuantumState.basis_state(2, "01")

    def test_cswap_gate(self, simulator):
        swapped = simulator.apply_gate(QuantumState.basis_state(3, "110"), Gate("cswap", (0, 1, 2)))
        assert swapped == QuantumState.basis_state(3, "101")
        untouched = simulator.apply_gate(QuantumState.basis_state(3, "010"), Gate("cswap", (0, 1, 2)))
        assert untouched == QuantumState.basis_state(3, "010")

    def test_run_on_basis(self, simulator, epr_circuit):
        # H|1> = (|0> - |1>)/sqrt2, then CNOT entangles: (|00> - |11>)/sqrt2
        state = simulator.run_on_basis(epr_circuit, "10")
        assert state[(0, 0)] == SQRT2_INV
        assert state[(1, 1)] == -SQRT2_INV
        assert state[(1, 0)].is_zero()

    def test_width_mismatch_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(Circuit(2).add("x", 0), QuantumState.zero_state(3))

    def test_simulate_circuit_defaults_to_zero_state(self, ghz_circuit):
        state = simulate_circuit(ghz_circuit)
        assert state[(0, 0, 0)] == SQRT2_INV
        assert state[(1, 1, 1)] == SQRT2_INV

    def test_simulate_basis_states(self, epr_circuit):
        results = simulate_basis_states(epr_circuit, ["00", "01"])
        assert len(results) == 2
        assert results[0][0] == (0, 0)
        assert results[0][1].nonzero_count() == 2

    def test_normalisation_is_preserved(self, simulator):
        circuit = random_circuit(4, num_gates=20, seed=8)
        state = simulator.run(circuit, QuantumState.zero_state(4))
        assert state.norm_squared() == ONE

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_sparse_and_dense_simulators_agree(self, seed):
        circuit = random_circuit(3, num_gates=12, seed=seed)
        sparse = simulate_circuit(circuit).to_vector()
        dense = simulate_dense(circuit)
        assert np.allclose(sparse, dense, atol=1e-9)


class TestDenseSimulator:
    def test_circuit_unitary_of_x(self):
        unitary = circuit_unitary(Circuit(1).add("x", 0))
        assert np.allclose(unitary, np.array([[0, 1], [1, 0]]))

    def test_circuit_unitary_is_unitary(self):
        circuit = random_circuit(3, num_gates=10, seed=2)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-9)

    def test_circuit_unitary_size_limit(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(20).add("x", 0))

    def test_state_fidelity(self):
        plus = np.array([1, 1]) / np.sqrt(2)
        minus = np.array([1, -1]) / np.sqrt(2)
        assert state_fidelity(plus, plus) == pytest.approx(1.0)
        assert state_fidelity(plus, minus) == pytest.approx(0.0)

    def test_initial_state_argument(self, epr_circuit):
        # |10> -> (|00> - |11>)/sqrt2
        vector = simulate_dense(epr_circuit, QuantumState.basis_state(2, "10"))
        assert abs(vector[0]) == pytest.approx(1 / np.sqrt(2))
        assert abs(vector[3]) == pytest.approx(1 / np.sqrt(2))
        assert abs(vector[2]) == pytest.approx(0.0)


class TestMeasurement:
    def test_probability_of_bell_state(self, simulator, epr_circuit):
        bell = simulator.run(epr_circuit, QuantumState.zero_state(2))
        assert measurement_probability(bell, 0, 0) == pytest.approx(0.5)
        assert measurement_probability(bell, 0, 1) == pytest.approx(0.5)

    def test_probability_value_validation(self):
        with pytest.raises(ValueError):
            measurement_probability(QuantumState.zero_state(1), 0, 2)

    def test_collapse_renormalises_power_of_two_probabilities(self, simulator, epr_circuit):
        bell = simulator.run(epr_circuit, QuantumState.zero_state(2))
        collapsed = collapse(bell, 0, 0)
        assert collapsed == QuantumState.basis_state(2, "00")
        assert collapsed.is_normalised()

    def test_collapse_impossible_outcome_rejected(self):
        state = QuantumState.basis_state(2, "00")
        with pytest.raises(ValueError):
            collapse(state, 0, 1)

    def test_collapse_entangled_three_qubits(self, simulator, ghz_circuit):
        ghz = simulator.run(ghz_circuit, QuantumState.zero_state(3))
        collapsed = collapse(ghz, 1, 1)
        assert collapsed == QuantumState.basis_state(3, "111")

    def test_outcome_distribution_sums_to_one(self, simulator, ghz_circuit):
        ghz = simulator.run(ghz_circuit, QuantumState.zero_state(3))
        distribution = outcome_distribution(ghz)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert set(distribution) == {(0, 0, 0), (1, 1, 1)}
