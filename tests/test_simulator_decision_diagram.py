"""Tests for the decision-diagram simulator (the SliQSim-style representation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, ZERO, AlgebraicNumber
from repro.benchgen import bv_circuit, ghz_circuit, qft_circuit
from repro.circuits import Circuit, Gate, random_circuit
from repro.simulator import (
    DDManager,
    DDState,
    DecisionDiagramSimulator,
    StateVectorSimulator,
    simulate_circuit,
    simulate_decision_diagram,
)
from repro.states import QuantumState, int_to_bits

HALF_SQRT = AlgebraicNumber(1, 0, 0, 0, 1)


# --------------------------------------------------------------------------- representation
def test_basis_state_round_trip():
    state = DDState.basis_state(3, "101")
    assert state.amplitude("101") == ONE
    assert state.amplitude("000") == ZERO
    assert state.to_quantum_state() == QuantumState.basis_state(3, "101")


def test_from_and_to_quantum_state_preserves_amplitudes():
    original = QuantumState(2, {(0, 0): HALF_SQRT, (1, 1): -HALF_SQRT})
    assert DDState.from_quantum_state(original).to_quantum_state() == original


def test_zero_function_is_the_zero_edge():
    state = DDState.from_quantum_state(QuantumState(2))
    assert state.is_zero()
    assert state.node_count() == 0


def test_uniform_superposition_has_linear_node_count():
    amplitude = AlgebraicNumber(1, 0, 0, 0, 6)
    uniform = QuantumState(6)
    for index in range(64):
        uniform[index] = amplitude
    diagram = DDState.from_quantum_state(uniform)
    assert diagram.node_count() == 6          # one shared node per level
    assert diagram.to_quantum_state() == uniform


def test_ghz_state_node_count_is_linear():
    output = DecisionDiagramSimulator().run_on_basis(ghz_circuit(8), (0,) * 8)
    # two distinct branches per level plus shared zero sub-diagrams
    assert output.node_count() <= 3 * 8
    assert output.to_quantum_state() == simulate_circuit(ghz_circuit(8))


def test_node_sharing_across_equal_subtrees():
    manager = DDManager()
    first = DDState.basis_state(4, "0000", manager)
    second = DDState.basis_state(4, "1000", manager)
    # everything below the first qubit is identical and must be shared
    assert manager.live_nodes() < first.node_count() + second.node_count()


def test_equality_is_semantic_not_structural():
    left = DDState.from_quantum_state(QuantumState(2, {(0, 1): ONE}))
    right = DDState.basis_state(2, "01", DDManager())
    assert left == right


# --------------------------------------------------------------------------- gate application
@pytest.mark.parametrize(
    "kind,qubits",
    [
        ("x", (0,)), ("y", (1,)), ("z", (2,)), ("h", (0,)), ("s", (1,)), ("t", (2,)),
        ("sdg", (0,)), ("tdg", (1,)), ("rx", (2,)), ("ry", (0,)),
        ("cx", (0, 2)), ("cx", (2, 0)), ("cz", (1, 2)), ("cs", (0, 1)), ("ct", (2, 1)),
        ("ccx", (0, 1, 2)), ("ccx", (2, 1, 0)), ("swap", (0, 2)), ("cswap", (1, 0, 2)),
    ],
)
def test_single_gate_matches_sparse_simulator(kind, qubits):
    gate = Gate(kind, qubits)
    simulator = DecisionDiagramSimulator()
    sparse = StateVectorSimulator()
    for index in (0, 3, 5, 7):
        initial = QuantumState.basis_state(3, index)
        expected = sparse.apply_gate(initial, gate)
        got = simulator.apply_gate(DDState.from_quantum_state(initial, simulator.manager), gate)
        assert got.to_quantum_state() == expected


def test_superposition_input_gate_application():
    simulator = DecisionDiagramSimulator()
    sparse = StateVectorSimulator()
    initial = QuantumState(2, {(0, 0): HALF_SQRT, (1, 0): HALF_SQRT})
    gate = Gate("cx", (0, 1))
    expected = sparse.apply_gate(initial, gate)
    got = simulator.apply_gate(DDState.from_quantum_state(initial, simulator.manager), gate)
    assert got.to_quantum_state() == expected


@pytest.mark.parametrize("circuit_builder,num_qubits", [
    (lambda: ghz_circuit(4), 4),
    (lambda: bv_circuit("1011"), 5),
    (lambda: qft_circuit(3), 3),
])
def test_full_circuits_match_sparse_simulator(circuit_builder, num_qubits):
    circuit = circuit_builder()
    expected = simulate_circuit(circuit)
    got = simulate_decision_diagram(circuit)
    assert got == expected


@pytest.mark.parametrize("seed", range(5))
def test_random_circuits_match_sparse_simulator(seed):
    circuit = random_circuit(4, seed=seed)
    for index in (0, 7, 11):
        initial = QuantumState.basis_state(4, index)
        expected = StateVectorSimulator().run(circuit, initial)
        got = simulate_decision_diagram(circuit, initial)
        assert got == expected


def test_run_rejects_width_mismatch():
    simulator = DecisionDiagramSimulator()
    with pytest.raises(ValueError):
        simulator.run(Circuit(3).add("h", 0), DDState.zero_state(2, simulator.manager))


def test_width_mismatch_only_raised_for_run():
    # apply_gate itself trusts the caller; run() is the validated entry point
    simulator = DecisionDiagramSimulator()
    state = simulator.run(Circuit(2).add("h", 0).add("cx", 0, 1), DDState.zero_state(2, simulator.manager))
    assert state.to_quantum_state() == QuantumState(2, {(0, 0): HALF_SQRT, (1, 1): HALF_SQRT})


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_clifford_t_circuit_agrees_with_sparse(seed):
    circuit = random_circuit(3, seed=seed)
    expected = simulate_circuit(circuit)
    assert simulate_decision_diagram(circuit) == expected


def test_amplitude_query_after_circuit():
    output = DecisionDiagramSimulator().run_on_basis(ghz_circuit(5), (0,) * 5)
    assert output.amplitude((0,) * 5) == HALF_SQRT
    assert output.amplitude((1,) * 5) == HALF_SQRT
    assert output.amplitude((1, 0, 0, 0, 0)) == ZERO
