"""Tests for the tree-automaton data structure and its basic algorithms."""

import pytest

from repro.algebraic import ONE, SQRT2_INV, ZERO, AlgebraicNumber
from repro.states import QuantumState
from repro.ta import (
    TreeAutomaton,
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    from_quantum_state,
    from_quantum_states,
    make_symbol,
    symbol_qubit,
    symbol_tags,
)


def bell_state() -> QuantumState:
    return QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})


class TestSymbols:
    def test_make_and_project(self):
        symbol = make_symbol(3, (7,))
        assert symbol_qubit(symbol) == 3
        assert symbol_tags(symbol) == (7,)
        assert symbol_tags(make_symbol(2)) == ()


class TestBasicProperties:
    def test_single_basis_state_structure(self):
        automaton = basis_state_ta(3, "010")
        automaton.validate()
        assert automaton.num_qubits == 3
        assert automaton.accepts(QuantumState.basis_state(3, "010"))
        assert not automaton.accepts(QuantumState.basis_state(3, "011"))

    def test_size_summary_format(self):
        automaton = basis_state_ta(2, "00")
        summary = automaton.size_summary()
        assert "(" in summary and summary.endswith(")")

    def test_states_and_transitions_counts(self):
        automaton = all_basis_states_ta(3)
        # Example 3.1: 2n + 1 states (+ a zero leaf) and ~3n + 1 transitions
        assert automaton.num_states <= 2 * 3 + 2
        assert automaton.num_transitions <= 3 * 3 + 2

    def test_transitions_at(self):
        automaton = all_basis_states_ta(3)
        for qubit in range(3):
            assert all(
                symbol_qubit(symbol) == qubit
                for _p, symbol, _l, _r in automaton.transitions_at(qubit)
            )

    def test_next_free_state_is_fresh(self):
        automaton = all_basis_states_ta(2)
        assert automaton.next_free_state() not in automaton.states

    def test_is_tagged(self):
        automaton = all_basis_states_ta(2)
        assert not automaton.is_tagged()

    def test_structural_equality(self):
        assert basis_state_ta(2, "01") == basis_state_ta(2, "01")
        assert basis_state_ta(2, "01") != basis_state_ta(2, "10")

    def test_validate_rejects_misplaced_leaf(self):
        broken = TreeAutomaton(
            2,
            {0},
            {0: [(make_symbol(0), 1, 1)]},
            {1: ONE},  # leaf at depth 1 instead of 2
        )
        with pytest.raises(ValueError):
            broken.validate()

    def test_validate_rejects_state_that_is_both_leaf_and_internal(self):
        broken = TreeAutomaton(
            1,
            {0},
            {0: [(make_symbol(0), 1, 1)], 1: [(make_symbol(0), 1, 1)]},
            {1: ONE},
        )
        with pytest.raises(ValueError):
            broken.validate()


class TestLanguageOperations:
    def test_membership_bell_state(self):
        automaton = from_quantum_state(bell_state())
        assert automaton.accepts(bell_state())
        assert not automaton.accepts(QuantumState.basis_state(2, "00"))

    def test_enumerate_single_state(self):
        automaton = from_quantum_state(bell_state())
        assert automaton.enumerate_states() == [bell_state()]

    def test_enumerate_all_basis_states(self):
        automaton = all_basis_states_ta(3)
        states = automaton.enumerate_states()
        assert len(states) == 8
        assert QuantumState.basis_state(3, 5) in states

    def test_enumerate_limit(self):
        automaton = all_basis_states_ta(4)
        with pytest.raises(ValueError):
            automaton.enumerate_states(limit=3)

    def test_union(self):
        left = basis_state_ta(2, "00")
        right = basis_state_ta(2, "11")
        union = left.union(right)
        assert union.accepts(QuantumState.basis_state(2, "00"))
        assert union.accepts(QuantumState.basis_state(2, "11"))
        assert not union.accepts(QuantumState.basis_state(2, "01"))
        with pytest.raises(ValueError):
            left.union(basis_state_ta(3, "000"))

    def test_is_empty(self):
        automaton = basis_state_ta(2, "00")
        assert not automaton.is_empty()
        empty = TreeAutomaton(2, set(), {}, {})
        assert empty.is_empty()

    def test_membership_on_large_sparse_state(self):
        # the sparse membership check must not blow up for 30 qubits
        automaton = basis_state_ta(30, (0,) * 30)
        assert automaton.accepts(QuantumState.basis_state(30, (0,) * 30))
        assert not automaton.accepts(QuantumState.basis_state(30, (0,) * 29 + (1,)))


class TestReductionAndTransformations:
    def test_reduce_merges_duplicate_structure(self):
        duplicated = basis_state_ta(3, "000").union(basis_state_ta(3, "000"))
        reduced = duplicated.reduce()
        assert reduced.enumerate_states() == [QuantumState.basis_state(3, "000")]
        assert reduced.num_states <= basis_state_ta(3, "000").num_states

    def test_reduce_preserves_language(self):
        states = [QuantumState.basis_state(3, i) for i in (0, 3, 5)]
        automaton = from_quantum_states(states, reduce=False)
        reduced = automaton.reduce()
        assert sorted(map(hash, reduced.enumerate_states())) == sorted(map(hash, states))

    def test_remove_useless_drops_unreachable(self):
        automaton = basis_state_ta(2, "01")
        orphan_id = automaton.next_free_state()
        internal = dict(automaton.internal)
        leaves = dict(automaton.leaves)
        leaves[orphan_id] = AlgebraicNumber(5, 0, 0, 0, 0)
        bloated = TreeAutomaton(2, automaton.roots, internal, leaves)
        cleaned = bloated.remove_useless()
        assert orphan_id not in cleaned.states

    def test_relabelled_is_language_preserving(self):
        automaton = from_quantum_states(
            [QuantumState.basis_state(2, "01"), bell_state()]
        )
        relabelled = automaton.relabelled()
        assert set(relabelled.states) == set(range(relabelled.num_states))
        assert relabelled.accepts(bell_state())
        assert relabelled.accepts(QuantumState.basis_state(2, "01"))

    def test_map_leaves(self):
        automaton = basis_state_ta(2, "00")
        scaled = automaton.map_leaves(lambda amp: amp * AlgebraicNumber(0, 0, 1, 0, 0))
        scaled_states = scaled.enumerate_states()
        assert scaled_states[0]["00"] == AlgebraicNumber(0, 0, 1, 0, 0)

    def test_shifted_preserves_language(self):
        automaton = basis_state_ta(2, "10")
        shifted = automaton.shifted(100)
        assert shifted.accepts(QuantumState.basis_state(2, "10"))
        assert min(shifted.states) >= 100

    def test_untagged_is_identity_on_untagged(self):
        automaton = all_basis_states_ta(2)
        assert automaton.untagged() == automaton


class TestConstructionHelpers:
    def test_basis_product_ta(self):
        automaton = basis_product_ta(3, [{0, 1}, {0}, {1}])
        automaton.validate()
        accepted = automaton.enumerate_states()
        assert len(accepted) == 2
        assert QuantumState.basis_state(3, "001") in accepted
        assert QuantumState.basis_state(3, "101") in accepted

    def test_basis_product_validation(self):
        with pytest.raises(ValueError):
            basis_product_ta(2, [{0, 1}])
        with pytest.raises(ValueError):
            basis_product_ta(2, [{0, 1}, {2}])

    def test_all_basis_states_is_linear_sized(self):
        automaton = all_basis_states_ta(20)
        assert automaton.num_states <= 2 * 20 + 2
        assert automaton.num_transitions <= 3 * 20 + 2

    def test_from_quantum_state_shares_zero_subtrees(self):
        state = QuantumState.basis_state(10, (0,) * 10)
        automaton = from_quantum_state(state)
        assert automaton.num_states <= 3 * 10 + 2

    def test_from_quantum_states_rejects_empty_and_mixed_width(self):
        with pytest.raises(ValueError):
            from_quantum_states([])
        with pytest.raises(ValueError):
            from_quantum_states([QuantumState.zero_state(2), QuantumState.zero_state(3)])


class TestCompactFormAndCaches:
    """The PR-3 kernel substrate: compact form, structure keys, reduce cache."""

    def test_compact_form_has_contiguous_ids(self):
        automaton = basis_state_ta(3, "010").shifted(100)
        compact = automaton.compact()
        assert compact.num_states == automaton.num_states
        assert set(compact.leaves) <= set(range(compact.num_states))
        referenced = {compact.roots[0]}
        for parent, transitions in enumerate(compact.internal):
            for _symbol, left, right in transitions:
                referenced.update((parent, left, right))
        assert referenced == set(range(compact.num_states))
        # compact ids map back to the original (shifted) state ids
        assert set(compact.to_original) == set(automaton.states)

    def test_compact_by_state_symbol_groups_transitions(self):
        automaton = all_basis_states_ta(2)
        compact = automaton.compact()
        total = sum(len(children) for children in compact.by_state_symbol.values())
        assert total == sum(len(ts) for ts in compact.internal)
        for (parent, symbol), children in compact.by_state_symbol.items():
            for left, right in children:
                assert (symbol, left, right) in compact.internal[parent]

    def test_structure_key_distinguishes_structure(self):
        left = basis_state_ta(2, "01")
        right = basis_state_ta(2, "10")
        assert left.structure_key() != right.structure_key()
        assert left.structure_key() == basis_state_ta(2, "01").structure_key()

    def test_reduce_cache_shares_reduced_instances(self):
        from repro.ta.automaton import clear_reduce_cache, reduce_cache_stats

        clear_reduce_cache()
        states = [QuantumState.basis_state(3, bits) for bits in ("000", "011", "101")]
        first = from_quantum_states(states, reduce=False)
        second = from_quantum_states(states, reduce=False)
        assert first is not second
        reduced_first = first.reduce()
        before = reduce_cache_stats()["hits"]
        reduced_second = second.reduce()
        assert reduced_second is reduced_first  # interned via the signature cache
        assert reduce_cache_stats()["hits"] == before + 1
        assert reduced_first.reduce() is reduced_first  # idempotence fast path

    def test_reduce_cache_clear_resets_counters(self):
        from repro.ta.automaton import clear_reduce_cache, reduce_cache_stats

        clear_reduce_cache()
        stats = reduce_cache_stats()
        assert stats == {"size": 0, "hits": 0, "misses": 0}

    def test_transitions_by_qubit_index_is_complete(self):
        automaton = all_basis_states_ta(3)
        index = automaton.transitions_by_qubit()
        total = sum(len(entries) for entries in index.values())
        assert total == sum(len(ts) for ts in automaton.internal.values())
        for qubit, entries in index.items():
            via_iterator = {(p, l, r) for p, _s, l, r in automaton.transitions_at(qubit)}
            assert set(entries) == via_iterator

    def test_remove_useless_worklist_handles_deep_chains(self):
        # a chain of states where productivity propagates through many levels:
        # the worklist must converge without quadratic re-sweeps and keep the
        # language intact
        base = basis_state_ta(6, "010101")
        bloated = base.union(base.shifted(base.next_free_state() + 3))
        cleaned = bloated.remove_useless()
        assert cleaned.accepts(QuantumState.basis_state(6, "010101"))
        # drop one leaf to make a whole branch unproductive
        crippled = TreeAutomaton(
            base.num_qubits, base.roots,
            dict(base.internal),
            {state: amp for state, amp in list(base.leaves.items())[:1]},
        )
        pruned = crippled.remove_useless()
        assert pruned.num_states < base.num_states


class TestEqualityFastPath:
    def test_eq_short_circuits_on_cached_structure_keys(self):
        left = basis_state_ta(4, 9)
        right = basis_state_ta(4, 9)
        # warm both caches, then make the slow path unreachable: equal cached
        # keys must answer True without touching the transition tables
        assert left.structure_key() == right.structure_key()
        sabotaged = dict(right.internal)
        right.internal.clear()
        try:
            assert left == right
        finally:
            right.internal.update(sabotaged)

    def test_eq_with_cold_caches_still_compares_structurally(self):
        left = basis_state_ta(3, 5)
        right = basis_state_ta(3, 5)
        assert left._skey is None and right._skey is None
        assert left == right

    def test_unequal_keys_fall_through_to_order_insensitive_comparison(self):
        # same transitions in a different dict order: structure keys differ
        # but __eq__ must still report equality (it compares frozensets)
        base = basis_state_ta(2, 1).union(basis_state_ta(2, 2)).relabelled()
        reordered = TreeAutomaton(
            base.num_qubits,
            base.roots,
            {s: tuple(reversed(ts)) for s, ts in base.internal.items()},
            dict(base.leaves),
        )
        if base.structure_key() != reordered.structure_key():
            assert base == reordered

    def test_eq_rejects_different_structure(self):
        left = basis_state_ta(3, 1)
        right = basis_state_ta(3, 2)
        left.structure_key(), right.structure_key()
        assert left != right
