"""Tests for determinization, language counting and counting-based equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import SQRT2_INV
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    check_equivalence,
    count_language,
    determinize,
    equivalent_via_counting,
    from_quantum_state,
    from_quantum_states,
    included_via_counting,
    is_deterministic,
    reduced_deterministic,
)


class TestIsDeterministic:
    def test_singleton_automata_are_deterministic(self):
        assert is_deterministic(basis_state_ta(3, "010"))

    def test_union_of_singletons_is_not_deterministic(self):
        union = basis_state_ta(2, "00").union(basis_state_ta(2, "11"))
        assert not is_deterministic(union)

    def test_determinize_output_is_deterministic(self):
        union = basis_state_ta(2, "00").union(basis_state_ta(2, "11"))
        assert is_deterministic(determinize(union))


class TestDeterminize:
    def test_preserves_language_of_all_basis_states(self):
        automaton = all_basis_states_ta(3)
        det = determinize(automaton)
        assert check_equivalence(automaton, det).equivalent

    def test_preserves_language_of_superpositions(self):
        bell = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
        automaton = from_quantum_states([bell, QuantumState.basis_state(2, "01")])
        det = determinize(automaton)
        assert check_equivalence(automaton, det).equivalent

    def test_empty_language(self):
        from repro.ta import TreeAutomaton

        empty = TreeAutomaton(2, set(), {}, {})
        assert determinize(empty).is_empty()
        assert count_language(empty) == 0

    def test_reduced_deterministic_is_small_for_product_sets(self):
        automaton = basis_product_ta(6, [{0, 1}] * 6)
        det = reduced_deterministic(automaton)
        assert is_deterministic(det)
        assert det.num_states <= 3 * 6 + 3

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_determinize_preserves_arbitrary_basis_sets(self, indices):
        automaton = from_quantum_states(
            [QuantumState.basis_state(4, i) for i in indices], reduce=False
        )
        det = determinize(automaton)
        assert is_deterministic(det)
        assert check_equivalence(automaton, det).equivalent


class TestCounting:
    def test_count_single_state(self):
        assert count_language(basis_state_ta(5, "10110")) == 1

    def test_count_all_basis_states(self):
        for num_qubits in (1, 2, 3, 6):
            assert count_language(all_basis_states_ta(num_qubits)) == 2 ** num_qubits

    def test_count_product_sets(self):
        automaton = basis_product_ta(4, [{0, 1}, {0}, {0, 1}, {1}])
        assert count_language(automaton) == 4

    def test_count_handles_duplicate_representations(self):
        duplicated = basis_state_ta(3, "000").union(basis_state_ta(3, "000"))
        assert count_language(duplicated) == 1

    @given(st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_count_matches_set_size(self, indices):
        automaton = from_quantum_states(
            [QuantumState.basis_state(5, i) for i in indices], reduce=False
        )
        assert count_language(automaton) == len(indices)


class TestCountingEquivalence:
    @given(st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
           st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_antichain_checker(self, left_indices, right_indices):
        left = from_quantum_states([QuantumState.basis_state(3, i) for i in left_indices])
        right = from_quantum_states([QuantumState.basis_state(3, i) for i in right_indices])
        expected = check_equivalence(left, right).equivalent
        assert equivalent_via_counting(left, right) == expected

    @given(st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=6),
           st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_inclusion_via_counting_matches_subset(self, left_indices, right_indices):
        left = from_quantum_states([QuantumState.basis_state(3, i) for i in left_indices])
        right = from_quantum_states([QuantumState.basis_state(3, i) for i in right_indices])
        assert included_via_counting(left, right) == left_indices.issubset(right_indices)

    def test_width_mismatch(self):
        assert not equivalent_via_counting(basis_state_ta(2, "00"), basis_state_ta(3, "000"))
        with pytest.raises(ValueError):
            included_via_counting(basis_state_ta(2, "00"), basis_state_ta(3, "000"))

    def test_cross_validation_on_engine_outputs(self):
        """The two equivalence procedures agree on automata produced by the engine."""
        from repro.circuits import random_circuit
        from repro.core import run_circuit

        rng = random.Random(99)
        for seed in range(3):
            circuit = random_circuit(3, num_gates=9, seed=seed)
            inputs = basis_product_ta(3, [rng.choice([{0}, {1}, {0, 1}]) for _ in range(3)])
            output = run_circuit(circuit, inputs).output
            assert equivalent_via_counting(output, output)
            assert count_language(output) >= 1
