"""Cross-cutting property-based tests on the framework's key invariants.

These complement the per-module tests with hypothesis-driven properties that
tie several subsystems together: gate transformers versus simulator semantics,
reduction/serialization round-trips, unitarity preservation, and soundness of
the bug-hunting answers.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE
from repro.circuits import Gate, random_circuit
from repro.core import apply_gate_to_state, run_circuit
from repro.core.composition import apply_composition_gate
from repro.core.permutation import apply_permutation_gate, supports_permutation
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState
from repro.ta import (
    basis_product_ta,
    check_equivalence,
    check_inclusion,
    from_quantum_state,
    from_quantum_states,
    serialization,
)

GATE_POOL = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "cx", "cz", "ccx"]


def _random_gate(rng: random.Random, num_qubits: int) -> Gate:
    kind = rng.choice(GATE_POOL)
    arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
    if arity > num_qubits:
        kind, arity = "x", 1
    return Gate(kind, tuple(rng.sample(range(num_qubits), arity)))


def _random_input_ta(rng: random.Random, num_qubits: int):
    allowed = [rng.choice([{0}, {1}, {0, 1}]) for _ in range(num_qubits)]
    return basis_product_ta(num_qubits, allowed)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_single_gate_transformers_match_pointwise_semantics(seed):
    """For both encodings: L(U(A)) == { U(T) | T in L(A) } (Theorems 5.x / 6.x)."""
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    automaton = _random_input_ta(rng, num_qubits)
    gate = _random_gate(rng, num_qubits)
    expected = from_quantum_states(
        [apply_gate_to_state(gate, state) for state in automaton.enumerate_states()]
    )
    via_composition = apply_composition_gate(automaton, gate).reduce()
    assert check_equivalence(via_composition, expected).equivalent
    if supports_permutation(gate):
        via_permutation = apply_permutation_gate(automaton, gate).reduce()
        assert check_equivalence(via_permutation, expected).equivalent


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_circuit_engine_matches_simulator_on_sets(seed):
    """Engine output language == pointwise simulator image of the input language."""
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    circuit = random_circuit(num_qubits, num_gates=3 * num_qubits, seed=seed)
    inputs = _random_input_ta(rng, num_qubits)
    simulator = StateVectorSimulator()
    expected = from_quantum_states(
        [simulator.run(circuit, state) for state in inputs.enumerate_states()]
    )
    result = run_circuit(circuit, inputs)
    assert check_equivalence(result.output, expected).equivalent


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_engine_preserves_normalisation(seed):
    """Every state reachable through the TA engine stays exactly normalised."""
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 3)
    circuit = random_circuit(num_qubits, num_gates=8, seed=seed)
    inputs = _random_input_ta(rng, num_qubits)
    result = run_circuit(circuit, inputs)
    for state in result.output.enumerate_states():
        assert state.norm_squared() == ONE


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_reduction_preserves_language(seed):
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    states = [
        QuantumState.basis_state(num_qubits, rng.randrange(2 ** num_qubits))
        for _ in range(rng.randint(1, 6))
    ]
    automaton = from_quantum_states(states, reduce=False)
    reduced = automaton.reduce()
    assert reduced.num_states <= automaton.num_states
    assert check_equivalence(automaton, reduced).equivalent


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_serialization_roundtrip_preserves_language(seed):
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    automaton = _random_input_ta(rng, num_qubits)
    loaded = serialization.loads(serialization.dumps(automaton))
    assert check_equivalence(automaton, loaded).equivalent


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_inclusion_is_a_partial_order_on_samples(seed):
    rng = random.Random(seed)
    num_qubits = 3
    universe = [QuantumState.basis_state(num_qubits, i) for i in range(8)]
    subset = rng.sample(universe, rng.randint(1, 4))
    superset = subset + rng.sample(universe, rng.randint(1, 4))
    small = from_quantum_states(subset)
    large = from_quantum_states(superset)
    assert check_inclusion(small, large).holds
    assert check_inclusion(small, small).holds
    if not check_inclusion(large, small).holds:
        witness = check_inclusion(large, small).counterexample
        assert large.accepts(witness) and not small.accepts(witness)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_gate_application_then_inverse_is_identity(seed):
    """Applying U then U^{-1} through the engine returns the original language."""
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 3)
    automaton = _random_input_ta(rng, num_qubits)
    kind = rng.choice(["x", "y", "z", "h", "s", "t", "cx", "cz", "ccx"])
    arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
    if arity > num_qubits:
        kind, arity = "z", 1
    gate = Gate(kind, tuple(rng.sample(range(num_qubits), arity)))
    inverse = gate.dagger()
    forward = apply_composition_gate(automaton, gate).reduce()
    roundtrip = apply_composition_gate(forward, inverse).reduce()
    assert check_equivalence(roundtrip, automaton).equivalent


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_witness_from_singleton_input_reproduces_on_simulator(seed):
    """Bug-hunting soundness: a reported witness really separates the two circuits."""
    from repro.circuits import inject_random_gate
    from repro.core import check_circuit_equivalence
    from repro.ta import basis_state_ta

    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    reference = random_circuit(num_qubits, num_gates=10, seed=seed)
    buggy, _ = inject_random_gate(reference, seed=seed + 1)
    inputs = basis_state_ta(num_qubits, (0,) * num_qubits)
    outcome = check_circuit_equivalence(reference, buggy, inputs)
    simulator = StateVectorSimulator()
    ref_out = simulator.run(reference, QuantumState.zero_state(num_qubits))
    bug_out = simulator.run(buggy, QuantumState.zero_state(num_qubits))
    if outcome.non_equivalent:
        assert ref_out != bug_out
        assert outcome.witness in (ref_out, bug_out)
    else:
        assert ref_out == bug_out
