"""Tests for the explicit quantum-state representation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, SQRT2_INV, ZERO, AlgebraicNumber
from repro.states import QuantumState, bits_to_int, int_to_bits, parse_bitstring


class TestBitHelpers:
    def test_bits_to_int_msbf(self):
        assert bits_to_int((1, 0, 1)) == 5
        assert bits_to_int((0, 0, 0)) == 0

    def test_int_to_bits_roundtrip(self):
        for value in range(16):
            assert bits_to_int(int_to_bits(value, 4)) == value

    def test_int_to_bits_range_check(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_parse_bitstring(self):
        assert parse_bitstring("0101") == (0, 1, 0, 1)
        with pytest.raises(ValueError):
            parse_bitstring("01a1")
        with pytest.raises(ValueError):
            parse_bitstring("")

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 8)) == value


class TestQuantumState:
    def test_basis_state_constructors_agree(self):
        assert QuantumState.basis_state(3, "010") == QuantumState.basis_state(3, 2)
        assert QuantumState.basis_state(3, (0, 1, 0)) == QuantumState.basis_state(3, "010")

    def test_zero_state(self):
        state = QuantumState.zero_state(4)
        assert state[(0, 0, 0, 0)] == ONE
        assert state.nonzero_count() == 1

    def test_setting_zero_amplitude_removes_entry(self):
        state = QuantumState.zero_state(2)
        state["00"] = ZERO
        assert state.nonzero_count() == 0
        assert not state

    def test_width_validation(self):
        with pytest.raises(ValueError):
            QuantumState.basis_state(3, "01")
        with pytest.raises(ValueError):
            QuantumState(0)

    def test_indexing_with_invalid_basis(self):
        state = QuantumState.zero_state(2)
        with pytest.raises(ValueError):
            state[(0, 2)]

    def test_addition_and_subtraction(self):
        left = QuantumState.basis_state(2, "00")
        right = QuantumState.basis_state(2, "11")
        total = left + right
        assert total["00"] == ONE and total["11"] == ONE
        assert (total - right) == left

    def test_add_requires_same_width(self):
        with pytest.raises(ValueError):
            QuantumState.zero_state(2) + QuantumState.zero_state(3)

    def test_scaling(self):
        bell = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
        doubled = bell.scaled(AlgebraicNumber(2, 0, 0, 0, 0))
        assert doubled["00"].to_complex() == pytest.approx(2 / 2 ** 0.5)

    def test_norm_and_normalisation(self):
        bell = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
        assert bell.norm_squared() == ONE
        assert bell.is_normalised()
        unnormalised = QuantumState(2, {(0, 0): ONE, (1, 1): ONE})
        assert not unnormalised.is_normalised()

    def test_equality_and_hash(self):
        a = QuantumState(2, {(0, 1): ONE})
        b = QuantumState.basis_state(2, "01")
        assert a == b
        assert hash(a) == hash(b)
        assert a != QuantumState.basis_state(2, "10")

    def test_equals_up_to_global_phase(self):
        bell = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
        phased = bell.scaled(AlgebraicNumber.omega_power(3))
        assert phased.equals_up_to_global_phase(bell)
        assert not bell.equals_up_to_global_phase(QuantumState.basis_state(2, "00"))

    def test_equals_up_to_global_phase_different_support(self):
        a = QuantumState(2, {(0, 0): ONE})
        b = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
        assert not a.equals_up_to_global_phase(b)

    def test_to_vector(self):
        state = QuantumState.basis_state(2, "10")
        vector = state.to_vector()
        assert vector[2] == pytest.approx(1.0)
        assert abs(vector).sum() == pytest.approx(1.0)

    def test_copy_is_independent(self):
        state = QuantumState.zero_state(2)
        clone = state.copy()
        clone["11"] = ONE
        assert state["11"] == ZERO

    def test_repr_contains_amplitudes(self):
        state = QuantumState.basis_state(2, "01")
        assert "|01>" in repr(state)
