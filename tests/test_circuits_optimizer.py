"""Tests for the peephole optimizer and its validation by the TA framework."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import check_unitary_equivalence
from repro.circuits import Circuit, PeepholeOptimizer, random_circuit
from repro.core import check_circuit_equivalence
from repro.ta import all_basis_states_ta


class TestRewrites:
    def test_adjacent_self_inverse_cancellation(self):
        circuit = Circuit(2).add("h", 0).add("h", 0).add("cx", 0, 1).add("cx", 0, 1)
        optimized, report = PeepholeOptimizer().optimize(circuit)
        assert optimized.num_gates == 0
        assert report.cancellations == 2
        assert report.removed_gates == 4

    def test_cancellation_across_disjoint_gates(self):
        circuit = Circuit(3).add("x", 0).add("h", 1).add("cx", 1, 2).add("x", 0)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        assert [g.kind for g in optimized] == ["h", "cx"]

    def test_no_cancellation_across_overlapping_gates(self):
        circuit = Circuit(2).add("x", 0).add("cx", 0, 1).add("x", 0)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        assert optimized.num_gates == 3

    def test_phase_fusion(self):
        circuit = Circuit(1).add("t", 0).add("t", 0)
        optimized, report = PeepholeOptimizer().optimize(circuit)
        assert [g.kind for g in optimized] == ["s"]
        assert report.fusions == 1

    def test_fusion_chains_to_identity(self):
        circuit = Circuit(1).add("s", 0).add("s", 0).add("z", 0)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        assert optimized.num_gates == 0

    def test_s_sdg_cancel(self):
        circuit = Circuit(1).add("s", 0).add("sdg", 0)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        assert optimized.num_gates == 0

    def test_report_counts(self):
        circuit = Circuit(2).add("t", 0).add("t", 0).add("x", 1).add("x", 1)
        optimized, report = PeepholeOptimizer().optimize(circuit)
        assert report.original_gates == 4
        assert report.optimized_gates == optimized.num_gates
        assert report.passes >= 1

    def test_reversed_cx_not_cancelled(self):
        circuit = Circuit(2).add("cx", 0, 1).add("cx", 1, 0)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        assert optimized.num_gates == 2


class TestSoundness:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_sound_mode_preserves_the_unitary(self, seed):
        circuit = random_circuit(3, num_gates=18, seed=seed)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        assert check_unitary_equivalence(circuit, optimized).equivalent

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_sound_mode_passes_ta_validation(self, seed):
        circuit = random_circuit(3, num_gates=12, seed=seed)
        optimized, _ = PeepholeOptimizer().optimize(circuit)
        outcome = check_circuit_equivalence(circuit, optimized, all_basis_states_ta(3))
        assert not outcome.non_equivalent

    def test_unsound_mode_is_caught_by_the_framework(self):
        from repro.ta import basis_state_ta

        # HZH == X, so dropping the Z turns the circuit into the identity;
        # over the single input |00> the output sets {|10>} vs {|00>} differ.
        circuit = Circuit(2).add("h", 0).add("z", 0).add("h", 0)
        optimized, report = PeepholeOptimizer(enable_unsound_rewrites=True).optimize(circuit)
        assert report.unsound_drops == 1
        outcome = check_circuit_equivalence(circuit, optimized, basis_state_ta(2, "00"))
        assert outcome.non_equivalent
        assert outcome.witness is not None

    def test_unsound_mode_on_phase_free_circuit_is_harmless(self):
        circuit = Circuit(2).add("x", 0).add("cx", 0, 1)
        optimized, report = PeepholeOptimizer(enable_unsound_rewrites=True).optimize(circuit)
        assert report.unsound_drops == 0
        assert not check_circuit_equivalence(circuit, optimized, all_basis_states_ta(2)).non_equivalent
