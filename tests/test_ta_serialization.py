"""Tests for the plain-text TA serialization format."""

import pytest

from repro.core.tagging import tag
from repro.states import QuantumState
from repro.ta import all_basis_states_ta, basis_state_ta, check_equivalence, from_quantum_state
from repro.ta import serialization
from repro.algebraic import SQRT2_INV


class TestSerialization:
    def test_roundtrip_single_basis_state(self):
        automaton = basis_state_ta(3, "101")
        loaded = serialization.loads(serialization.dumps(automaton))
        assert check_equivalence(automaton, loaded).equivalent
        assert loaded.num_qubits == 3

    def test_roundtrip_all_basis_states(self):
        automaton = all_basis_states_ta(4)
        loaded = serialization.loads(serialization.dumps(automaton))
        assert check_equivalence(automaton, loaded).equivalent

    def test_roundtrip_with_amplitudes(self):
        bell = QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})
        automaton = from_quantum_state(bell)
        loaded = serialization.loads(serialization.dumps(automaton))
        assert loaded.accepts(bell)

    def test_file_roundtrip(self, tmp_path):
        automaton = all_basis_states_ta(3)
        path = tmp_path / "automaton.ta"
        serialization.save(automaton, str(path))
        loaded = serialization.load(str(path))
        assert check_equivalence(automaton, loaded).equivalent

    def test_comments_and_blank_lines_are_ignored(self):
        text = serialization.dumps(basis_state_ta(2, "01"))
        decorated = "# header comment\n\n" + text + "\n# trailing\n"
        loaded = serialization.loads(decorated)
        assert loaded.accepts(QuantumState.basis_state(2, "01"))

    def test_tagged_automata_are_rejected(self):
        tagged = tag(basis_state_ta(2, "00"))
        with pytest.raises(ValueError):
            serialization.dumps(tagged)

    def test_missing_qubits_declaration_rejected(self):
        with pytest.raises(ValueError):
            serialization.loads("roots 0\nleaf 0 1 0 0 0 0\n")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ValueError):
            serialization.loads("qubits 1\nroots 0\nbogus 1 2 3\n")

    def test_bad_symbol_rejected(self):
        with pytest.raises(ValueError):
            serialization.loads("qubits 1\nroots 0\ntrans 0 z0 1 2\n")
