"""Tests for the campaign matrix scheduler and its resumable manifest."""

import json
import os
import time

import pytest

from repro.benchgen.families import (
    FAMILY_BUILDERS,
    FAMILY_CAPABILITIES,
    default_campaign_sizes,
    family_capability,
    validate_family_mode,
    validate_family_size,
)
from repro.campaign import (
    CampaignManifest,
    ManifestError,
    MatrixCell,
    MatrixRunResult,
    MatrixScheduler,
    MatrixSpec,
    estimate_cell_cost,
    format_cell_table,
    parse_sizes,
    read_report,
)
from repro.campaign.manifest import CELL_DONE, CELL_PENDING, CELL_RUNNING


class TestFamilyCapabilities:
    def test_every_family_has_a_capability_record(self):
        assert set(FAMILY_CAPABILITIES) == set(FAMILY_BUILDERS)

    def test_default_campaign_sizes_are_valid(self):
        for family in FAMILY_BUILDERS:
            for size in default_campaign_sizes(family):
                validate_family_size(family, size)

    def test_capability_is_alias_aware(self):
        assert family_capability("grover") is family_capability("grover-single")

    def test_size_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            validate_family_size("grover", 1)

    def test_unsupported_mode_rejected(self):
        with pytest.raises(ValueError):
            validate_family_mode("grover", "permutation")
        assert validate_family_mode("mctoffoli", "permutation") == "permutation"

    def test_default_sizes_finish_fast_enough_for_campaigns(self):
        # every capability default must actually build (guards registry drift)
        for family in FAMILY_BUILDERS:
            capability = FAMILY_CAPABILITIES[family]
            assert capability.min_size <= min(capability.campaign_sizes)


class TestParseSizes:
    def test_single_int(self):
        assert parse_sizes(4) == (4,)

    def test_range_string(self):
        assert parse_sizes("2-5") == (2, 3, 4, 5)

    def test_comma_list_string(self):
        assert parse_sizes("5,3,3") == (3, 5)

    def test_mixed_list(self):
        assert parse_sizes([2, "4-5"]) == (2, 4, 5)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            parse_sizes("5-2")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_sizes("two")
        with pytest.raises(ValueError):
            parse_sizes(True)


def _spec(**overrides) -> MatrixSpec:
    mapping = dict(
        families=["mctoffoli", "ghz"],
        sizes={"mctoffoli": [2], "ghz": [3]},
        modes=["hybrid"],
        mutants=2,
    )
    mapping.update(overrides)
    return MatrixSpec.from_mapping(mapping)


class TestMatrixSpec:
    def test_aliases_resolve(self):
        spec = MatrixSpec.from_mapping({"families": "grover", "sizes": 2})
        assert spec.families == ("grover-single",)

    def test_default_sizes_from_registry(self):
        spec = MatrixSpec.from_mapping({"families": ["ghz"]})
        assert spec.sizes["ghz"] == default_campaign_sizes("ghz")

    def test_shared_sizes_apply_to_every_family(self):
        spec = MatrixSpec.from_mapping({"families": ["mctoffoli", "ghz"], "sizes": "2-3"})
        assert spec.sizes["mctoffoli"] == spec.sizes["ghz"] == (2, 3)

    def test_nested_matrix_table_accepted(self):
        spec = MatrixSpec.from_mapping({"matrix": {"families": ["ghz"], "mutants": 7}})
        assert spec.mutants == 7

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            MatrixSpec.from_mapping({"families": ["ghz"], "mutantz": 3})

    def test_sizes_for_unlisted_family_rejected(self):
        with pytest.raises(ValueError, match="not in 'families'"):
            MatrixSpec.from_mapping({"families": ["ghz"], "sizes": {"bv": 3}})

    def test_out_of_range_size_rejected(self):
        with pytest.raises(ValueError, match="needs size >="):
            MatrixSpec.from_mapping({"families": ["grover"], "sizes": 1})

    def test_unknown_mode_and_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis mode"):
            _spec(modes=["turbo"])
        with pytest.raises(ValueError, match="unknown mutation kind"):
            _spec(mutations=["teleport"])

    def test_cells_expand_in_spec_order(self):
        spec = _spec(sizes={"mctoffoli": "2-3", "ghz": [3]})
        assert [cell.cell_id for cell in spec.cells()] == [
            "mctoffoli-n2-hybrid",
            "mctoffoli-n3-hybrid",
            "ghz-n3-hybrid",
        ]

    def test_unsupported_combinations_are_skipped_not_fatal(self):
        spec = _spec(modes=["hybrid", "permutation"])
        ids = [cell.cell_id for cell in spec.cells()]
        assert "mctoffoli-n2-permutation" in ids
        assert "ghz-n3-permutation" not in ids
        assert ("ghz", "permutation") in spec.skipped_combinations()

    def test_fully_unsupported_sweep_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            MatrixSpec.from_mapping(
                {"families": ["ghz"], "modes": ["permutation"]}
            ).cells()

    def test_fingerprint_tracks_content(self):
        assert _spec().fingerprint() == _spec().fingerprint()
        assert _spec().fingerprint() != _spec(mutants=3).fingerprint()
        assert _spec().default_campaign_id().startswith("mx-")

    def test_round_trips_through_to_dict(self):
        spec = _spec(mutations=["insert", "remove"], seed=9)
        rebuilt = MatrixSpec.from_mapping(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'families = ["mctoffoli"]\nmodes = ["hybrid"]\nmutants = 3\n\n'
            '[sizes]\nmctoffoli = "2-3"\n'
        )
        spec = MatrixSpec.from_file(str(path))
        assert spec.sizes["mctoffoli"] == (2, 3)
        assert spec.mutants == 3

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"families": ["ghz"], "sizes": [3, 4]}))
        assert MatrixSpec.from_file(str(path)).sizes["ghz"] == (3, 4)

    def test_bad_toml_is_a_value_error(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text("families = [unclosed")
        with pytest.raises(ValueError):
            MatrixSpec.from_file(str(path))

    def test_example_spec_file_parses(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        spec = MatrixSpec.from_file(os.path.join(repo_root, "examples", "matrix_sweep.toml"))
        assert spec.cells()


class TestCostOrdering:
    def test_bigger_sizes_cost_more(self):
        small = MatrixCell("ghz", 3, "hybrid", 5)
        large = MatrixCell("ghz", 6, "hybrid", 5)
        assert estimate_cell_cost(small) < estimate_cell_cost(large)

    def test_composition_costs_more_than_permutation(self):
        base = dict(family="mctoffoli", size=3, mutants=5)
        assert estimate_cell_cost(MatrixCell(mode="permutation", **base)) < estimate_cell_cost(
            MatrixCell(mode="composition", **base)
        )


class TestManifest:
    def test_create_load_round_trip(self, tmp_path):
        manifest = CampaignManifest.create(
            str(tmp_path), "mx-test", {"families": ["ghz"]}, "fp", ["a", "b"]
        )
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert loaded.spec == {"families": ["ghz"]}
        assert loaded.cell_ids() == ["a", "b"]
        assert loaded.status("a") == CELL_PENDING
        assert manifest.path == loaded.path

    def test_transitions_persist(self, tmp_path):
        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a", "b"])
        manifest.mark_running("a", report_path="a.jsonl")
        manifest.mark_done("a", {"jobs": 3})
        manifest.mark_running("b")
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert loaded.status("a") == CELL_DONE
        assert loaded.summary("a") == {"jobs": 3}
        assert loaded.status("b") == CELL_RUNNING
        assert loaded.completed_cell_ids() == ["a"]
        assert loaded.interrupted_cell_ids() == ["b"]
        assert loaded.remaining_cell_ids() == ["b"]
        assert not loaded.is_complete()

    def test_missing_manifest_is_an_error(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest"):
            CampaignManifest.load(str(tmp_path), "mx-nope")

    def test_corrupt_manifest_is_an_error(self, tmp_path):
        path = CampaignManifest.path_for(str(tmp_path), "mx-bad")
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{broken")
        with pytest.raises(ManifestError, match="cannot read"):
            CampaignManifest.load(str(tmp_path), "mx-bad")

    def test_fingerprint_mismatch_is_an_error(self, tmp_path):
        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp-one", ["a"])
        manifest.check_fingerprint("fp-one")
        with pytest.raises(ManifestError, match="different sweep spec"):
            manifest.check_fingerprint("fp-two")

    def test_mark_running_records_a_lease(self, tmp_path):
        import socket

        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        owner = loaded.cells["a"]["owner"]
        assert owner["pid"] == os.getpid()
        assert owner["host"] == socket.gethostname()
        assert owner["heartbeat"] > 0

    def test_own_lease_is_reclaimable_on_same_process_resume(self, tmp_path):
        # KeyboardInterrupt + --resume in the same process must re-queue the
        # cell even though its owning pid (ours) is alive
        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        assert manifest.interrupted_cell_ids() == ["a"]
        assert manifest.remaining_cell_ids() == ["a"]

    def test_live_foreign_lease_is_not_requeued(self, tmp_path):
        import socket

        from repro.campaign.manifest import lease_is_stale

        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        # rewrite the lease as if pid 1 (always alive, never ours) held it
        manifest.cells["a"]["owner"] = {
            "pid": 1, "host": socket.gethostname(), "heartbeat": time.time(),
        }
        manifest.save()
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert loaded.interrupted_cell_ids() == []
        assert loaded.live_cell_ids() == ["a"]
        assert loaded.remaining_cell_ids() == []
        assert not lease_is_stale(loaded.cells["a"]["owner"])

    def test_dead_pid_lease_is_stale(self, tmp_path):
        import socket

        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        manifest.cells["a"]["owner"] = {
            "pid": 2**22 + 12345,  # beyond any default pid_max on CI hosts
            "host": socket.gethostname(), "heartbeat": time.time(),
        }
        manifest.save()
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert loaded.interrupted_cell_ids() == ["a"]

    def test_other_host_lease_goes_by_heartbeat_alone(self, tmp_path):
        from repro.campaign.manifest import LEASE_TTL_SECONDS, lease_is_stale

        fresh = {"pid": 1, "host": "elsewhere", "heartbeat": time.time()}
        stale = {"pid": 1, "host": "elsewhere",
                 "heartbeat": time.time() - LEASE_TTL_SECONDS - 1}
        assert not lease_is_stale(fresh)
        assert lease_is_stale(stale)

    def test_legacy_ownerless_running_cell_is_stale(self, tmp_path):
        from repro.campaign.manifest import lease_is_stale

        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        manifest.cells["a"].pop("owner")  # manifest written before leases existed
        manifest.save()
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert loaded.interrupted_cell_ids() == ["a"]
        assert lease_is_stale(None) and lease_is_stale({})

    def test_touch_running_refreshes_the_heartbeat(self, tmp_path):
        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        manifest.cells["a"]["owner"]["heartbeat"] = 1.0  # ancient
        manifest.save()
        manifest.touch_running("a")
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert loaded.cells["a"]["owner"]["heartbeat"] > 1.0
        # touching a non-running cell is a silent no-op
        manifest.mark_done("a", {})
        manifest.touch_running("a")
        assert "owner" not in CampaignManifest.load(str(tmp_path), "mx-test").cells["a"]

    def test_mark_done_drops_the_lease(self, tmp_path):
        manifest = CampaignManifest.create(str(tmp_path), "mx-test", {}, "fp", ["a"])
        manifest.mark_running("a")
        manifest.mark_done("a", {"jobs": 1})
        loaded = CampaignManifest.load(str(tmp_path), "mx-test")
        assert "owner" not in loaded.cells["a"]

    def test_default_manifest_dir_matches_its_documentation(self, monkeypatch):
        from repro.campaign.manifest import MANIFEST_DIR_ENV, default_manifest_dir

        monkeypatch.setenv(MANIFEST_DIR_ENV, "/tmp/custom-manifests")
        assert default_manifest_dir() == "/tmp/custom-manifests"
        monkeypatch.delenv(MANIFEST_DIR_ENV)
        expected_suffix = os.path.join(".cache", "autoq-repro", "manifests")
        assert default_manifest_dir().endswith(expected_suffix)


def _scheduler(tmp_path, spec, **overrides) -> MatrixScheduler:
    settings = dict(
        workers=1,
        report_dir=str(tmp_path / "reports"),
        manifest_dir=str(tmp_path / "manifests"),
        cache_dir="",  # isolate manifest semantics from the result cache
    )
    settings.update(overrides)
    return MatrixScheduler(spec, **settings)


class TestMatrixScheduler:
    def test_end_to_end_sweep(self, tmp_path):
        spec = _spec(sizes={"mctoffoli": "2-3", "ghz": [3]})
        result = _scheduler(tmp_path, spec).run()
        assert [row["cell"] for row in result.rows] == [c.cell_id for c in spec.cells()]
        assert result.totals["jobs"] == sum(row["jobs"] for row in result.rows)
        assert result.totals["jobs"] == 3 * (spec.mutants + 1)
        assert result.reused_cells == 0
        assert result.trustworthy
        # per-cell JSONL reports exist and are well-formed
        for row in result.rows:
            records = read_report(row["report_path"])
            assert len(records) == row["jobs"]
        # the roll-up JSON mirrors the in-memory result
        with open(result.summary_path) as handle:
            rollup = json.load(handle)
        assert rollup["totals"] == result.totals
        assert rollup["campaign_id"] == result.campaign_id
        # the manifest is complete
        manifest = CampaignManifest.load(str(tmp_path / "manifests"), result.campaign_id)
        assert manifest.is_complete()

    def test_cells_run_cheapest_first(self, tmp_path):
        spec = _spec(sizes={"mctoffoli": [2], "ghz": [5]})
        seen = []
        _scheduler(tmp_path, spec).run(progress=seen.append)
        cell_lines = [line for line in seen if line.startswith("[")]
        assert "mctoffoli-n2-hybrid" in cell_lines[0]
        assert "ghz-n5-hybrid" in cell_lines[1]

    def test_mid_cell_kill_then_resume_matches_uninterrupted_run(self, tmp_path, monkeypatch):
        spec = _spec(sizes={"mctoffoli": "2-3", "ghz": [3]}, mutants=3)

        # uninterrupted baseline, fully separate state directories
        baseline = _scheduler(tmp_path / "baseline", spec).run()

        # kill the sweep in the middle of its second cell: execute_job raises
        # once the first cell (mutants+1 jobs) and one more job have run
        import repro.campaign.runner as runner_module

        real_execute = runner_module.execute_job
        calls = {"count": 0}

        def dying_execute(job, *args, **kwargs):
            calls["count"] += 1
            if calls["count"] == spec.mutants + 2:
                raise KeyboardInterrupt
            return real_execute(job, *args, **kwargs)

        monkeypatch.setattr(runner_module, "execute_job", dying_execute)
        scheduler = _scheduler(tmp_path / "resumed", spec)
        with pytest.raises(KeyboardInterrupt):
            scheduler.run()
        monkeypatch.setattr(runner_module, "execute_job", real_execute)

        manifest = CampaignManifest.load(scheduler.manifest_dir, scheduler.campaign_id)
        assert len(manifest.completed_cell_ids()) == 1
        assert len(manifest.interrupted_cell_ids()) == 1

        # resume: the done cell must not re-run a single job
        calls["count"] = 0
        counting = lambda job, *args, **kwargs: (
            calls.__setitem__("count", calls["count"] + 1),
            real_execute(job, *args, **kwargs),
        )[1]
        monkeypatch.setattr(runner_module, "execute_job", counting)
        result = _scheduler(tmp_path / "resumed", spec,
                            campaign_id=scheduler.campaign_id).run(resume=True)
        assert result.reused_cells == 1
        remaining_cells = len(spec.cells()) - 1
        assert calls["count"] == remaining_cells * (spec.mutants + 1)

        # the final summary equals the uninterrupted run's
        def comparable(rows):
            keys = ("cell", "jobs", "holds", "violated", "unsupported", "errors")
            return [{key: row[key] for key in keys} for row in rows]

        assert comparable(result.rows) == comparable(baseline.rows)
        for key in ("jobs", "holds", "violated", "unsupported", "errors"):
            assert result.totals[key] == baseline.totals[key]

    def test_resume_skips_cells_held_by_a_live_worker(self, tmp_path):
        import socket

        spec = _spec()
        scheduler = _scheduler(tmp_path, spec)
        result = scheduler.run()
        assert result.trustworthy
        # pretend another live process (pid 1) is mid-way through one cell
        manifest = CampaignManifest.load(str(tmp_path / "manifests"),
                                         scheduler.campaign_id)
        held = spec.cells()[0].cell_id
        manifest.cells[held]["status"] = CELL_RUNNING
        manifest.cells[held]["owner"] = {
            "pid": 1, "host": socket.gethostname(), "heartbeat": time.time(),
        }
        manifest.save()
        seen = []
        resumed = _scheduler(tmp_path, spec).run(resume=True, progress=seen.append)
        assert any("held by a live worker" in line and held in line for line in seen)
        # the held cell was neither re-run nor stolen
        assert not any(line.startswith("[") and held in line for line in seen)
        loaded = CampaignManifest.load(str(tmp_path / "manifests"),
                                       scheduler.campaign_id)
        assert loaded.status(held) == CELL_RUNNING
        assert loaded.cells[held]["owner"]["pid"] == 1
        assert not loaded.is_complete()  # the held cell is still outstanding
        assert resumed.campaign_id == scheduler.campaign_id

    def test_resume_without_manifest_is_an_error(self, tmp_path):
        with pytest.raises(ManifestError):
            MatrixScheduler.resume("mx-missing", manifest_dir=str(tmp_path / "manifests"))

    def test_resume_with_changed_spec_is_an_error(self, tmp_path):
        scheduler = _scheduler(tmp_path, _spec())
        scheduler.run()
        changed = _scheduler(tmp_path, _spec(mutants=9),
                             campaign_id=scheduler.campaign_id)
        with pytest.raises(ManifestError, match="different sweep spec"):
            changed.run(resume=True)

    def test_resume_rebuilds_spec_from_manifest(self, tmp_path):
        scheduler = _scheduler(tmp_path, _spec())
        first = scheduler.run()
        resumed = MatrixScheduler.resume(
            scheduler.campaign_id,
            report_dir=str(tmp_path / "reports"),
            manifest_dir=str(tmp_path / "manifests"),
            cache_dir="",
        )
        assert resumed.spec == scheduler.spec
        result = resumed.run(resume=True)
        assert result.reused_cells == len(scheduler.spec.cells())
        assert result.totals == first.totals

    def test_fresh_run_overwrites_a_finished_manifest(self, tmp_path):
        scheduler = _scheduler(tmp_path, _spec())
        scheduler.run()
        result = _scheduler(tmp_path, _spec()).run()  # same id, no resume
        assert result.reused_cells == 0

    def test_invalid_worker_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _scheduler(tmp_path, _spec(), workers=0)

    def test_workers_share_a_pool_across_cells(self, tmp_path):
        spec = _spec(mutants=3)
        result = _scheduler(tmp_path, spec, workers=2).run()
        assert result.trustworthy
        assert result.totals["jobs"] == 2 * (spec.mutants + 1)

    def test_permutation_cells_count_unsupported_mutants(self, tmp_path):
        # inserting e.g. an H gate into a permutation-mode mctoffoli campaign
        # must surface as "unsupported", never as an error
        spec = MatrixSpec.from_mapping({
            "families": ["mctoffoli"], "sizes": [2], "modes": ["permutation"],
            "mutants": 8,
        })
        result = _scheduler(tmp_path, spec).run()
        assert result.totals["errors"] == 0
        assert result.totals["unsupported"] > 0
        assert result.trustworthy


class TestFormatCellTable:
    def test_table_contains_rows_and_totals(self):
        rows = [{
            "cell": "ghz-n3-hybrid", "jobs": 4, "holds": 2, "violated": 2,
            "unsupported": 0, "errors": 0, "cache_hits": 1,
            "wall_seconds": 0.25, "reused": True, "reference_violated": False,
        }]
        totals = {"jobs": 4, "holds": 2, "violated": 2, "unsupported": 0,
                  "errors": 0, "cache_hits": 1, "wall_seconds": 0.25}
        table = format_cell_table(rows, totals)
        assert "ghz-n3-hybrid" in table
        assert "resumed" in table
        assert "total" in table
        assert "0.25" in table

    def test_reference_violation_is_flagged(self):
        rows = [{"cell": "x", "jobs": 1, "holds": 0, "violated": 1, "unsupported": 0,
                 "errors": 0, "cache_hits": 0, "wall_seconds": 0.0,
                 "reused": False, "reference_violated": True}]
        assert "REF-VIOLATED" in format_cell_table(rows)


class TestMatrixRunResult:
    def test_trustworthy_accounting(self):
        base = dict(campaign_id="mx", manifest_path="m", summary_path="s",
                    reused_cells=0, skipped_combinations=[], wall_seconds=0.0)
        good = MatrixRunResult(rows=[{"reference_violated": False}],
                               totals={"errors": 0}, **base)
        assert good.trustworthy
        errored = MatrixRunResult(rows=[{"reference_violated": False}],
                                  totals={"errors": 1}, **base)
        assert not errored.trustworthy
        ref = MatrixRunResult(rows=[{"reference_violated": True}],
                              totals={"errors": 0}, **base)
        assert not ref.trustworthy


class TestResumeSurvivesEvictedCaches:
    """``campaign --resume`` must recompute, not error, when the result cache
    and/or automaton store directories were deleted between runs (a cache
    eviction, a cleaned /tmp, a different machine)."""

    def test_resume_with_deleted_cache_and_store_dir(self, tmp_path, monkeypatch):
        import shutil

        import repro.campaign.runner as runner_module

        spec = _spec(sizes={"mctoffoli": "2-3", "ghz": [3]}, mutants=2)
        cache_dir = tmp_path / "cache"

        # kill the sweep inside its second cell, with caching + store enabled
        real_execute = runner_module.execute_job
        calls = {"count": 0}

        def dying_execute(job, *args, **kwargs):
            calls["count"] += 1
            if calls["count"] == spec.mutants + 2:
                raise KeyboardInterrupt
            return real_execute(job, *args, **kwargs)

        monkeypatch.setattr(runner_module, "execute_job", dying_execute)
        scheduler = _scheduler(tmp_path, spec, cache_dir=str(cache_dir))
        with pytest.raises(KeyboardInterrupt):
            scheduler.run()
        monkeypatch.setattr(runner_module, "execute_job", real_execute)
        assert (cache_dir / "store").is_dir()

        # evict everything the interrupted run persisted except the manifest
        shutil.rmtree(cache_dir)

        result = _scheduler(tmp_path, spec, cache_dir=str(cache_dir),
                            campaign_id=scheduler.campaign_id).run(resume=True)
        assert result.reused_cells == 1
        assert result.totals["errors"] == 0
        assert result.totals["jobs"] == sum(cell.mutants + 1 for cell in spec.cells())
        # the resumed run re-verified (and re-published) instead of erroring
        assert (cache_dir / "store").is_dir()

    def test_resume_with_store_path_blocked_by_a_file(self, tmp_path, monkeypatch):
        # a *file* squatting on the store path must degrade to "no store",
        # never crash the sweep
        import repro.campaign.runner as runner_module

        spec = _spec(sizes={"mctoffoli": [2]}, mutants=1)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "store").write_text("not a directory")

        result = _scheduler(tmp_path, spec, cache_dir=str(cache_dir)).run()
        assert result.totals["errors"] == 0
        assert result.totals["store_hits"] == 0
        assert result.totals["store_publishes"] == 0
