"""Tests for TA language inclusion / equivalence checking and witnesses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, SQRT2_INV
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    check_equivalence,
    check_inclusion,
    from_quantum_state,
    from_quantum_states,
)


class TestInclusion:
    def test_singleton_included_in_all_basis_states(self):
        single = basis_state_ta(3, "101")
        universe = all_basis_states_ta(3)
        assert check_inclusion(single, universe).holds
        result = check_inclusion(universe, single)
        assert not result.holds
        assert result.counterexample is not None
        assert universe.accepts(result.counterexample)
        assert not single.accepts(result.counterexample)

    def test_inclusion_requires_same_width(self):
        with pytest.raises(ValueError):
            check_inclusion(basis_state_ta(2, "00"), basis_state_ta(3, "000"))

    def test_empty_language_is_included_in_everything(self):
        empty = basis_state_ta(2, "00").remove_useless()
        empty = empty.__class__(2, set(), {}, {})
        assert check_inclusion(empty, basis_state_ta(2, "11")).holds

    def test_amplitude_mismatch_is_detected(self):
        bell = from_quantum_state(QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV}))
        unnormalised = from_quantum_state(QuantumState(2, {(0, 0): ONE, (1, 1): ONE}))
        assert not check_inclusion(bell, unnormalised).holds
        assert not check_inclusion(unnormalised, bell).holds

    def test_product_form_inclusions(self):
        smaller = basis_product_ta(4, [{0}, {0, 1}, {1}, {0}])
        larger = basis_product_ta(4, [{0, 1}, {0, 1}, {1}, {0, 1}])
        assert check_inclusion(smaller, larger).holds
        assert not check_inclusion(larger, smaller).holds

    def test_bool_conversion(self):
        assert bool(check_inclusion(basis_state_ta(2, "00"), all_basis_states_ta(2)))
        assert not bool(check_inclusion(all_basis_states_ta(2), basis_state_ta(2, "00")))


class TestEquivalence:
    def test_identical_automata_are_equivalent(self):
        automaton = all_basis_states_ta(4)
        assert check_equivalence(automaton, automaton).equivalent

    def test_different_constructions_same_language(self):
        explicit = from_quantum_states([QuantumState.basis_state(2, i) for i in range(4)])
        structural = all_basis_states_ta(2)
        assert check_equivalence(explicit, structural).equivalent

    def test_witness_side_left_only(self):
        bigger = from_quantum_states(
            [QuantumState.basis_state(2, "00"), QuantumState.basis_state(2, "11")]
        )
        smaller = basis_state_ta(2, "00")
        result = check_equivalence(bigger, smaller)
        assert not result.equivalent
        assert result.side == "left-only"
        assert result.counterexample == QuantumState.basis_state(2, "11")

    def test_witness_side_right_only(self):
        smaller = basis_state_ta(2, "00")
        bigger = from_quantum_states(
            [QuantumState.basis_state(2, "00"), QuantumState.basis_state(2, "11")]
        )
        result = check_equivalence(smaller, bigger)
        assert not result.equivalent
        assert result.side == "right-only"

    def test_equivalence_is_insensitive_to_reduction(self):
        states = [QuantumState.basis_state(3, i) for i in (1, 2, 4)]
        reduced = from_quantum_states(states, reduce=True)
        unreduced = from_quantum_states(states, reduce=False)
        assert check_equivalence(reduced, unreduced).equivalent

    @given(st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
           st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_matches_set_equality(self, left_indices, right_indices):
        left = from_quantum_states([QuantumState.basis_state(3, i) for i in left_indices])
        right = from_quantum_states([QuantumState.basis_state(3, i) for i in right_indices])
        result = check_equivalence(left, right)
        assert result.equivalent == (left_indices == right_indices)
        if not result.equivalent:
            witness = result.counterexample
            accepted_left = left.accepts(witness)
            accepted_right = right.accepts(witness)
            assert accepted_left != accepted_right

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
           st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_inclusion_matches_subset(self, left_indices, right_indices):
        left = from_quantum_states([QuantumState.basis_state(4, i) for i in left_indices])
        right = from_quantum_states([QuantumState.basis_state(4, i) for i in right_indices])
        assert check_inclusion(left, right).holds == left_indices.issubset(right_indices)
