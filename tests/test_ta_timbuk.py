"""Round-trip and format tests for the Timbuk import/export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, AlgebraicNumber
from repro.circuits import Circuit
from repro.core import run_circuit, zero_state_precondition
from repro.states import QuantumState
from repro.ta import all_basis_states_ta, basis_state_ta, check_equivalence, from_quantum_states
from repro.ta.automaton import TreeAutomaton
from repro.ta.timbuk import dumps_timbuk, load_timbuk, loads_timbuk, save_timbuk
from repro.core.tagging import tag


def test_dump_contains_expected_sections():
    text = dumps_timbuk(basis_state_ta(2, 0), name="bell_pre")
    assert text.startswith("Ops ")
    assert "Automaton bell_pre" in text
    assert "Final States" in text
    assert "Transitions" in text
    assert "x1(" in text and "x2(" in text
    assert "[1,0,0,0,0]" in text and "[0,0,0,0,0]" in text


def test_round_trip_basis_state():
    automaton = basis_state_ta(3, 5)
    restored = loads_timbuk(dumps_timbuk(automaton))
    assert restored.num_qubits == 3
    assert check_equivalence(automaton, restored).equivalent


def test_round_trip_all_basis_states():
    automaton = all_basis_states_ta(3)
    restored = loads_timbuk(dumps_timbuk(automaton))
    assert check_equivalence(automaton, restored).equivalent


def test_round_trip_superposition_amplitudes():
    half = AlgebraicNumber(1, 0, 0, 0, 2)
    state = QuantumState(2, {(0, 0): half, (0, 1): half, (1, 0): half, (1, 1): half})
    automaton = from_quantum_states([state])
    restored = loads_timbuk(dumps_timbuk(automaton))
    assert check_equivalence(automaton, restored).equivalent


def test_round_trip_circuit_output(epr_circuit):
    output = run_circuit(epr_circuit, zero_state_precondition(2)).output
    restored = loads_timbuk(dumps_timbuk(output))
    assert check_equivalence(output, restored).equivalent


def test_file_round_trip(tmp_path):
    automaton = all_basis_states_ta(2)
    path = tmp_path / "pre.timbuk"
    save_timbuk(automaton, str(path), name="pre")
    restored = load_timbuk(str(path))
    assert check_equivalence(automaton, restored).equivalent


def test_parse_hand_written_bell_precondition():
    text = """
    Ops x1:2 x2:2 [0,0,0,0,0]:0 [1,0,0,0,0]:0

    Automaton bell_pre
    States q0 q1 q2 q3 q4
    Final States q0
    Transitions
    [1,0,0,0,0] -> q3
    [0,0,0,0,0] -> q4
    x2(q3, q4) -> q1
    x2(q4, q4) -> q2
    x1(q1, q2) -> q0
    """
    automaton = loads_timbuk(text)
    assert automaton.num_qubits == 2
    assert automaton.accepts(QuantumState.basis_state(2, 0))
    assert not automaton.accepts(QuantumState.basis_state(2, 1))


def test_parse_tolerates_comments_and_blank_lines():
    text = dumps_timbuk(basis_state_ta(1, 1))
    commented = "% header comment\n" + text.replace("Transitions", "Transitions\n% rules below")
    restored = loads_timbuk(commented)
    assert check_equivalence(basis_state_ta(1, 1), restored).equivalent


def test_rejects_tagged_automata():
    tagged = tag(basis_state_ta(2, 0))
    with pytest.raises(ValueError):
        dumps_timbuk(tagged)


def test_rejects_garbage_transition():
    with pytest.raises(ValueError):
        loads_timbuk("Ops x1:2\nAutomaton a\nStates q0\nFinal States q0\nTransitions\nfoo(q0) -> q0\n")


def test_rejects_conflicting_leaf_amplitudes():
    text = """
    Ops x1:2 [0,0,0,0,0]:0 [1,0,0,0,0]:0
    Automaton a
    States q0 q1
    Final States q0
    Transitions
    [1,0,0,0,0] -> q1
    [0,0,0,0,0] -> q1
    x1(q1, q1) -> q0
    """
    with pytest.raises(ValueError):
        loads_timbuk(text)


def test_rejects_missing_qubit_symbols():
    with pytest.raises(ValueError):
        loads_timbuk("Ops a:0\nAutomaton a\nStates q0\nFinal States q0\nTransitions\n")


def test_num_qubits_inferred_from_transitions_when_ops_incomplete():
    text = """
    Ops
    Automaton a
    States q0 q1 q2
    Final States q0
    Transitions
    [1,0,0,0,0] -> q2
    x1(q1, q1) -> q0
    x2(q2, q2) -> q1
    """
    assert loads_timbuk(text).num_qubits == 2


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=5),
)
def test_property_round_trip_preserves_language(num_qubits, indices):
    states = [
        QuantumState.basis_state(num_qubits, index % (1 << num_qubits)) for index in sorted(indices)
    ]
    automaton = from_quantum_states(states)
    restored = loads_timbuk(dumps_timbuk(automaton))
    assert check_equivalence(automaton, restored).equivalent


def test_empty_language_round_trip():
    empty = TreeAutomaton(2, set(), {}, {0: ONE})
    text = dumps_timbuk(empty)
    restored = loads_timbuk(text)
    assert restored.is_empty()
