"""End-to-end integration tests reproducing the paper's workflows in miniature.

These tests exercise the whole pipeline — benchmark generation, the TA engine,
equivalence checking, witness validation on the simulator, and the baselines —
on laptop-sized instances of the experiments in Section 7.
"""

import pytest

from repro.baselines import PathSumChecker, PathSumVerdict, RandomStimuliChecker, StimuliVerdict
from repro.benchgen import (
    bv_benchmark,
    feynman_suite,
    grover_all_benchmark,
    grover_single_benchmark,
    mctoffoli_benchmark,
    revlib_suite,
)
from repro.circuits import inject_random_gate, random_circuit
from repro.core import AnalysisMode, IncrementalBugHunter, check_circuit_equivalence, verify_triple
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState
from repro.ta import basis_state_ta, check_equivalence, from_quantum_states


class TestTable2Workflow:
    """Verification against pre/post-conditions (the Table 2 use case)."""

    @pytest.mark.parametrize("size", [3, 6])
    def test_bv_hybrid_and_composition(self, size):
        benchmark = bv_benchmark(size)
        for mode in (AnalysisMode.HYBRID, AnalysisMode.COMPOSITION):
            result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition, mode=mode)
            assert result.holds, f"{benchmark.name} failed in mode {mode}"

    def test_grover_single_verification(self):
        benchmark = grover_single_benchmark(3)
        result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        assert result.holds
        # the output TA represents exactly one quantum state
        assert len(result.output.enumerate_states()) == 1

    def test_grover_all_verification(self):
        benchmark = grover_all_benchmark(2)
        result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        assert result.holds
        # one output state per oracle
        assert len(result.output.enumerate_states()) == 4

    def test_mctoffoli_verification(self):
        benchmark = mctoffoli_benchmark(5)
        result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        assert result.holds
        # the permutation-based encoding should handle every gate (Hybrid = cheap)
        assert result.statistics.gates_composition == 0

    def test_output_ta_agrees_with_simulator_sweep(self):
        """The TA output-set equals the set of per-basis-state simulator outputs."""
        benchmark = mctoffoli_benchmark(3)
        simulator = StateVectorSimulator()
        expected = from_quantum_states(
            [simulator.run(benchmark.circuit, state) for state in benchmark.precondition.enumerate_states()]
        )
        result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        assert check_equivalence(result.output, expected).equivalent

    def test_injected_bug_breaks_the_triple_and_witness_validates(self):
        benchmark = bv_benchmark(5)
        buggy, _ = inject_random_gate(benchmark.circuit, seed=13)
        result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
        if result.holds:
            pytest.skip("this particular mutation happens to preserve the specification")
        witness = result.witness
        assert witness is not None
        simulator = StateVectorSimulator()
        reachable = simulator.run(buggy, QuantumState.zero_state(buggy.num_qubits))
        if result.witness_kind == "reachable-but-forbidden":
            assert witness == reachable
            assert not benchmark.postcondition.accepts(witness)
        else:
            assert benchmark.postcondition.accepts(witness)


class TestTable3Workflow:
    """Bug finding by output-set comparison (the Table 3 use case)."""

    def test_bug_hunting_on_feynman_style_circuits(self):
        suite = feynman_suite()
        name, circuit = sorted(suite.items())[0]
        buggy, _ = inject_random_gate(circuit, seed=1)
        hunter = IncrementalBugHunter(seed=0, max_iterations=circuit.num_qubits + 1)
        result = hunter.hunt(circuit, buggy)
        assert result.bug_found, f"bug not found in {name}"

    def test_bug_hunting_on_revlib_style_circuits(self):
        suite = revlib_suite()
        circuit = suite[sorted(suite)[0]]
        buggy, _ = inject_random_gate(circuit, seed=2)
        result = IncrementalBugHunter(seed=0).hunt(circuit, buggy)
        assert result.bug_found

    def test_bug_hunting_on_random_circuits(self):
        circuit = random_circuit(6, seed=100)
        buggy, _ = inject_random_gate(circuit, seed=101)
        result = IncrementalBugHunter(seed=0).hunt(circuit, buggy)
        assert result.bug_found
        # the witness distinguishes the two output sets
        assert result.witness is not None

    def test_autoq_catches_bug_missed_by_basis_stimuli(self):
        """The qualitative claim of Table 3: exact set comparison catches phase bugs
        that random basis-state stimuli cannot observe."""
        from repro.circuits import Circuit

        reference = Circuit(3)
        buggy = Circuit(3).add("cz", 0, 1)
        stimuli = RandomStimuliChecker(num_stimuli=8, seed=5)
        assert stimuli.check_equivalence(reference, buggy).verdict == StimuliVerdict.PROBABLY_EQUAL
        # AutoQ-style check over a superposition input: prepare H on the controls first
        probe = Circuit(3).add("h", 0).add("h", 1)
        outcome = check_circuit_equivalence(
            probe.concatenated(reference), probe.concatenated(buggy), basis_state_ta(3, "000")
        )
        assert outcome.non_equivalent

    def test_pathsum_and_autoq_agree_on_classical_bug(self):
        suite = revlib_suite()
        circuit = suite[sorted(suite)[1]]
        buggy, _ = inject_random_gate(circuit, seed=3, gate_pool=("x", "cx", "ccx"))
        pathsum_verdict = PathSumChecker().check_equivalence(circuit, buggy).verdict
        hunt = IncrementalBugHunter(seed=0).hunt(circuit, buggy)
        assert hunt.bug_found
        assert pathsum_verdict in (PathSumVerdict.NOT_EQUAL, PathSumVerdict.INCONCLUSIVE)


class TestCrossValidation:
    """Engine vs. simulator vs. formulas on a grid of circuits (Theorem 4.1 at scale)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_full_stack_agreement(self, seed):
        simulator = StateVectorSimulator()
        circuit = random_circuit(4, num_gates=16, seed=seed)
        inputs = basis_state_ta(4, "0000")
        engine_output = check_circuit_equivalence(circuit, circuit.copy(), inputs)
        assert not engine_output.non_equivalent
        expected = from_quantum_states([simulator.run(circuit, QuantumState.zero_state(4))])
        from repro.core import run_circuit

        assert check_equivalence(run_circuit(circuit, inputs).output, expected).equivalent
