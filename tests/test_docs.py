"""Documentation-drift tests: run the docs lint inside tier-1.

The same checks run as the CI ``docs`` job (``scripts/check_docs.py``); having
them here means a PR that renames a CLI flag or deletes an example cannot pass
the test suite while its documentation still shows the old world.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "scripts", "check_docs.py")


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_intra_repo_links_resolve(check_docs):
    assert check_docs.check_links() == []


def test_documented_cli_invocations_parse(check_docs):
    assert check_docs.check_cli_invocations() == []


def test_cli_docstring_matches_parser(check_docs):
    assert check_docs.check_cli_docstring() == []


def test_documented_example_files_exist(check_docs):
    assert check_docs.check_example_files() == []


def test_checker_detects_a_broken_link(check_docs, tmp_path, monkeypatch):
    # guard the guard: a fabricated broken doc must actually fail
    bad = tmp_path / "bad.md"
    bad.write_text("[gone](does/not/exist.md)\n\n```sh\npython -m repro.cli frobnicate --x\n```\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    problems = check_docs.check_links(paths=("bad.md",))
    problems += check_docs.check_cli_invocations(paths=("bad.md",))
    assert any("broken link" in problem for problem in problems)
    assert any("unknown subcommand" in problem for problem in problems)


def test_documented_env_vars_exist_in_source(check_docs):
    assert check_docs.check_env_vars() == []


def test_env_var_checker_detects_drift(check_docs, tmp_path, monkeypatch):
    # guard the guard: a doc naming a ghost env var must fail ...
    bad = tmp_path / "bad.md"
    bad.write_text("Set `$AUTOQ_REPRO_NONEXISTENT_KNOB` to tune nothing.\n")
    (tmp_path / "src").mkdir()
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    problems = check_docs.check_env_vars(paths=("bad.md",))
    assert any("AUTOQ_REPRO_NONEXISTENT_KNOB" in problem for problem in problems)
    # ... and a source env var documented nowhere must fail too
    (tmp_path / "src" / "mod.py").write_text('DIR = os.environ.get("AUTOQ_REPRO_SECRET_DIR")\n')
    (tmp_path / "empty.md").write_text("no env vars here\n")
    problems = check_docs.check_env_vars(paths=("empty.md",))
    assert any("AUTOQ_REPRO_SECRET_DIR" in problem for problem in problems)
