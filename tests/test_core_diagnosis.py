"""Tests for witness replay and divergence localisation."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, Gate, inject_random_gate
from repro.core import (
    check_circuit_equivalence,
    diagnose,
    localise_divergence,
    replay_witness,
    verify_triple,
    zero_state_precondition,
)
from repro.core.specs import bell_postcondition
from repro.states import QuantumState
from repro.ta import all_basis_states_ta, basis_state_ta


def _bell_pair():
    reference = Circuit(2, name="epr").add("h", 0).add("cx", 0, 1)
    buggy = reference.copy(name="epr_buggy").add("z", 1)
    return reference, buggy


# --------------------------------------------------------------------------- replay
def test_replay_confirms_verification_witness():
    reference, buggy = _bell_pair()
    precondition = zero_state_precondition(2)
    result = verify_triple(precondition, buggy, bell_postcondition())
    assert not result.holds
    inputs = replay_witness(reference, buggy, result.witness, precondition)
    assert inputs == [(0, 0)]


def test_replay_confirms_non_equivalence_witness():
    reference, buggy = _bell_pair()
    inputs_ta = all_basis_states_ta(2)
    outcome = check_circuit_equivalence(reference, buggy, inputs_ta)
    assert outcome.non_equivalent
    inputs = replay_witness(reference, buggy, outcome.witness, inputs_ta)
    assert inputs  # at least one distinguishing basis input
    assert all(len(bits) == 2 for bits in inputs)


def test_replay_returns_empty_for_unrelated_witness():
    reference, buggy = _bell_pair()
    unrelated = QuantumState.basis_state(2, "01")
    assert replay_witness(reference, buggy, unrelated, zero_state_precondition(2)) == []


# --------------------------------------------------------------------------- localisation
def test_localise_divergence_points_at_injected_gate():
    reference = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2).add("t", 2)
    gates = list(reference)
    gates.insert(2, Gate("x", (1,)))  # bug injected at position 2
    buggy = Circuit(3, gates, name="buggy")
    assert localise_divergence(reference, buggy, (0, 0, 0)) == 2


def test_localise_divergence_none_for_identical_prefix():
    reference, buggy = _bell_pair()  # bug is an extra trailing gate
    assert localise_divergence(reference, buggy, (0, 0)) is None


def test_localise_divergence_on_replaced_gate():
    reference = Circuit(2).add("x", 0).add("cx", 0, 1).add("s", 1)
    gates = list(reference)
    gates[2] = Gate("sdg", (1,))
    buggy = Circuit(2, gates)
    assert localise_divergence(reference, buggy, (0, 0)) == 2


def test_localise_divergence_ignores_unaffected_inputs():
    reference = Circuit(2).add("cx", 0, 1)
    buggy = Circuit(2).add("cx", 0, 1).add("cz", 0, 1)
    # from |00> the two circuits never diverge on the common prefix
    assert localise_divergence(reference, buggy, (0, 0)) is None


# --------------------------------------------------------------------------- full diagnosis
def test_diagnose_renders_confirmed_report():
    reference = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2)
    gates = list(reference)
    gates.insert(1, Gate("y", (0,)))
    buggy = Circuit(3, gates, name="buggy")
    inputs_ta = basis_state_ta(3, "000")
    outcome = check_circuit_equivalence(reference, buggy, inputs_ta)
    assert outcome.non_equivalent
    report = diagnose(reference, buggy, outcome.witness, inputs_ta)
    assert report.confirmed
    assert report.first_divergent_gate == 1
    assert "y" in (report.divergent_gate or "")
    rendered = report.render()
    assert "confirmed" in rendered and "first divergent gate" in rendered


def test_diagnose_unconfirmed_witness_renders_gracefully():
    reference, buggy = _bell_pair()
    report = diagnose(reference, buggy, QuantumState.basis_state(2, "10"), zero_state_precondition(2))
    assert not report.confirmed
    assert "NOT" in report.render()


@pytest.mark.parametrize("seed", range(4))
def test_diagnose_random_injected_bugs(seed):
    reference = Circuit(4, name="ref").add("h", 0).add("cx", 0, 1).add("ccx", 0, 1, 2).add("t", 3).add("cx", 2, 3)
    buggy, mutation = inject_random_gate(reference, seed=seed)
    inputs_ta = all_basis_states_ta(4)
    outcome = check_circuit_equivalence(reference, buggy, inputs_ta)
    if not outcome.non_equivalent:
        pytest.skip("this mutation does not change the output set (e.g. a global phase)")
    report = diagnose(reference, buggy, outcome.witness, inputs_ta)
    assert report.confirmed


# ----------------------------------------------------- golden mutation localisation
class TestGoldenMutationLocalisation:
    """`localise_mutation` must point at the injected `MutationRecord` position.

    Each case is a hand-built mutant of the same reference circuit, chosen so
    the fault is *not* semantically invisible and does not commute past its
    neighbours (transposing commuting gates or swapping operands of symmetric
    gates legitimately localises to ``None``).
    """

    @staticmethod
    def _reference() -> Circuit:
        return Circuit(2, name="golden").add("h", 0).add("cx", 0, 1).add("t", 0).add("x", 1)

    def _case(self, kind):
        from repro.circuits import MutationRecord

        reference = self._reference()
        gates = list(reference)
        if kind == "insert":
            gates.insert(2, Gate("x", (0,)))
            record = MutationRecord(("insert", 2, gates[2]))
        elif kind == "remove":
            removed = gates.pop(1)
            record = MutationRecord(("remove", 1, removed))
        elif kind == "swap-operands":
            gates[1] = Gate("cx", (1, 0))
            record = MutationRecord(("swap-operands", 1, gates[1]))
        elif kind == "phase-error":
            gates[2] = Gate("tdg", (0,))
            record = MutationRecord(("phase-error", 2, gates[2]))
        elif kind == "reorder-qubits":
            gates = [gate.remap({0: 1, 1: 0}) for gate in gates]
            record = MutationRecord(("reorder-qubits", 0, gates[0]))
        elif kind == "off-by-one":
            gates.insert(3, gates[2])
            record = MutationRecord(("off-by-one", 3, gates[3]))
        elif kind == "transpose":
            gates[0], gates[1] = gates[1], gates[0]
            record = MutationRecord(("transpose", 0, gates[0]))
        else:  # pragma: no cover - parametrisation is exhaustive
            raise AssertionError(kind)
        return reference, Circuit(2, gates, name="golden_mutant"), record

    @pytest.mark.parametrize(
        "kind",
        ["insert", "remove", "swap-operands", "phase-error",
         "reorder-qubits", "off-by-one", "transpose"],
    )
    def test_localise_mutation_matches_injected_record(self, kind):
        from repro.core import localise_mutation

        reference, mutant, record = self._case(kind)
        assert localise_mutation(reference, mutant) == record.position, kind

    def test_localise_mutation_none_for_invisible_mutation(self):
        from repro.core import localise_mutation

        reference = self._reference()
        gates = list(reference)
        gates[1] = Gate("cx", (0, 1))  # identical gate: nothing changed
        assert localise_mutation(reference, Circuit(2, gates)) is None

    def test_localise_mutation_flags_commuting_transpose_in_lockstep(self):
        from repro.core import localise_mutation

        # t(0) commutes with the control of cx(0, 1), so the transposed
        # circuit is *semantically* equivalent — but localisation runs the
        # undecomposed gate lists in lockstep and compares intermediate
        # states, so it still reports the transpose position.  That is why
        # `static_prefilter` must skip commuting transposes *before* the
        # oracles, rather than relying on localisation to discard them.
        reference = Circuit(2).add("cx", 0, 1).add("t", 0)
        gates = [reference[1], reference[0]]
        assert localise_mutation(reference, Circuit(2, gates)) == 0

    # no "swap-operands" / "reorder-qubits" here: both produce cx(1, 0),
    # which the permutation kernel rejects (control must precede target)
    _PERMUTATION_KINDS = ("insert", "remove", "off-by-one", "transpose")

    def _permutation_case(self, kind):
        """Golden mutants built from permutation gates only, so the
        ``permutation`` analysis mode can run them too."""
        from repro.circuits import MutationRecord

        reference = Circuit(2, name="perm").add("x", 0).add("cx", 0, 1).add("x", 1)
        gates = list(reference)
        if kind == "insert":
            gates.insert(1, Gate("x", (0,)))
            record = MutationRecord(("insert", 1, gates[1]))
        elif kind == "remove":
            removed = gates.pop(1)
            record = MutationRecord(("remove", 1, removed))
        elif kind == "swap-operands":
            gates[1] = Gate("cx", (1, 0))
            record = MutationRecord(("swap-operands", 1, gates[1]))
        elif kind == "reorder-qubits":
            gates = [gate.remap({0: 1, 1: 0}) for gate in gates]
            record = MutationRecord(("reorder-qubits", 0, gates[0]))
        elif kind == "off-by-one":
            gates.insert(2, gates[1])
            record = MutationRecord(("off-by-one", 2, gates[2]))
        elif kind == "transpose":
            gates[0], gates[1] = gates[1], gates[0]
            record = MutationRecord(("transpose", 0, gates[0]))
        else:  # pragma: no cover - parametrisation is exhaustive
            raise AssertionError(kind)
        return reference, Circuit(2, gates, name="perm_mutant"), record

    @pytest.mark.parametrize("mode", ["hybrid", "composition", "permutation"])
    def test_every_mode_detects_each_golden_mutation(self, mode):
        """Each engine mode flags every golden mutant as non-equivalent, and
        localisation still matches the injected record in that setting.

        The ``permutation`` mode only runs permutation gates, so it gets
        golden fixtures of its own (no ``phase-error`` there: a circuit of
        classical-reversible gates has no phase gate to flip).
        """
        from repro.core import localise_mutation

        if mode == "permutation":
            kinds, case, input_bits = self._PERMUTATION_KINDS, self._permutation_case, "00"
        else:
            kinds = ("insert", "remove", "swap-operands", "phase-error",
                     "reorder-qubits", "off-by-one", "transpose")
            case, input_bits = self._case, "00"
        for kind in kinds:
            reference, mutant, record = case(kind)
            outcome = check_circuit_equivalence(
                reference, mutant, basis_state_ta(2, input_bits), mode=mode
            )
            assert outcome.non_equivalent, (mode, kind)
            assert localise_mutation(reference, mutant) == record.position, (mode, kind)
