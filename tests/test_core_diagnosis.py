"""Tests for witness replay and divergence localisation."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, Gate, inject_random_gate
from repro.core import (
    check_circuit_equivalence,
    diagnose,
    localise_divergence,
    replay_witness,
    verify_triple,
    zero_state_precondition,
)
from repro.core.specs import bell_postcondition
from repro.states import QuantumState
from repro.ta import all_basis_states_ta, basis_state_ta


def _bell_pair():
    reference = Circuit(2, name="epr").add("h", 0).add("cx", 0, 1)
    buggy = reference.copy(name="epr_buggy").add("z", 1)
    return reference, buggy


# --------------------------------------------------------------------------- replay
def test_replay_confirms_verification_witness():
    reference, buggy = _bell_pair()
    precondition = zero_state_precondition(2)
    result = verify_triple(precondition, buggy, bell_postcondition())
    assert not result.holds
    inputs = replay_witness(reference, buggy, result.witness, precondition)
    assert inputs == [(0, 0)]


def test_replay_confirms_non_equivalence_witness():
    reference, buggy = _bell_pair()
    inputs_ta = all_basis_states_ta(2)
    outcome = check_circuit_equivalence(reference, buggy, inputs_ta)
    assert outcome.non_equivalent
    inputs = replay_witness(reference, buggy, outcome.witness, inputs_ta)
    assert inputs  # at least one distinguishing basis input
    assert all(len(bits) == 2 for bits in inputs)


def test_replay_returns_empty_for_unrelated_witness():
    reference, buggy = _bell_pair()
    unrelated = QuantumState.basis_state(2, "01")
    assert replay_witness(reference, buggy, unrelated, zero_state_precondition(2)) == []


# --------------------------------------------------------------------------- localisation
def test_localise_divergence_points_at_injected_gate():
    reference = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2).add("t", 2)
    gates = list(reference)
    gates.insert(2, Gate("x", (1,)))  # bug injected at position 2
    buggy = Circuit(3, gates, name="buggy")
    assert localise_divergence(reference, buggy, (0, 0, 0)) == 2


def test_localise_divergence_none_for_identical_prefix():
    reference, buggy = _bell_pair()  # bug is an extra trailing gate
    assert localise_divergence(reference, buggy, (0, 0)) is None


def test_localise_divergence_on_replaced_gate():
    reference = Circuit(2).add("x", 0).add("cx", 0, 1).add("s", 1)
    gates = list(reference)
    gates[2] = Gate("sdg", (1,))
    buggy = Circuit(2, gates)
    assert localise_divergence(reference, buggy, (0, 0)) == 2


def test_localise_divergence_ignores_unaffected_inputs():
    reference = Circuit(2).add("cx", 0, 1)
    buggy = Circuit(2).add("cx", 0, 1).add("cz", 0, 1)
    # from |00> the two circuits never diverge on the common prefix
    assert localise_divergence(reference, buggy, (0, 0)) is None


# --------------------------------------------------------------------------- full diagnosis
def test_diagnose_renders_confirmed_report():
    reference = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2)
    gates = list(reference)
    gates.insert(1, Gate("y", (0,)))
    buggy = Circuit(3, gates, name="buggy")
    inputs_ta = basis_state_ta(3, "000")
    outcome = check_circuit_equivalence(reference, buggy, inputs_ta)
    assert outcome.non_equivalent
    report = diagnose(reference, buggy, outcome.witness, inputs_ta)
    assert report.confirmed
    assert report.first_divergent_gate == 1
    assert "y" in (report.divergent_gate or "")
    rendered = report.render()
    assert "confirmed" in rendered and "first divergent gate" in rendered


def test_diagnose_unconfirmed_witness_renders_gracefully():
    reference, buggy = _bell_pair()
    report = diagnose(reference, buggy, QuantumState.basis_state(2, "10"), zero_state_precondition(2))
    assert not report.confirmed
    assert "NOT" in report.render()


@pytest.mark.parametrize("seed", range(4))
def test_diagnose_random_injected_bugs(seed):
    reference = Circuit(4, name="ref").add("h", 0).add("cx", 0, 1).add("ccx", 0, 1, 2).add("t", 3).add("cx", 2, 3)
    buggy, mutation = inject_random_gate(reference, seed=seed)
    inputs_ta = all_basis_states_ta(4)
    outcome = check_circuit_equivalence(reference, buggy, inputs_ta)
    if not outcome.non_equivalent:
        pytest.skip("this mutation does not change the output set (e.g. a global phase)")
    report = diagnose(reference, buggy, outcome.witness, inputs_ta)
    assert report.confirmed
