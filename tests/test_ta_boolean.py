"""Tests for intersection, complement and difference of condition automata."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, ZERO, AlgebraicNumber
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_state_ta,
    check_equivalence,
    check_inclusion,
    count_language,
    from_quantum_states,
)
from repro.ta.boolean import complement, difference, intersection, leaf_alphabet

BASIS_ALPHABET = (ZERO, ONE)


def _basis_set_ta(num_qubits, indices):
    states = [QuantumState.basis_state(num_qubits, index) for index in sorted(indices)]
    return from_quantum_states(states)


# --------------------------------------------------------------------------- alphabet helper
def test_leaf_alphabet_collects_distinct_amplitudes():
    automaton = all_basis_states_ta(2)
    assert set(leaf_alphabet(automaton)) == {ZERO, ONE}


def test_leaf_alphabet_over_multiple_automata():
    half = AlgebraicNumber(1, 0, 0, 0, 2)
    extra = from_quantum_states([QuantumState(1, {(0,): half, (1,): half})])
    assert set(leaf_alphabet(all_basis_states_ta(1), extra)) == {ZERO, ONE, half}


# --------------------------------------------------------------------------- intersection
def test_intersection_of_overlapping_basis_sets():
    left = _basis_set_ta(3, {0, 1, 2, 3})
    right = _basis_set_ta(3, {2, 3, 4})
    result = intersection(left, right)
    expected = _basis_set_ta(3, {2, 3})
    assert check_equivalence(result, expected).equivalent


def test_intersection_with_disjoint_sets_is_empty():
    left = _basis_set_ta(2, {0})
    right = _basis_set_ta(2, {3})
    assert intersection(left, right).is_empty()


def test_intersection_with_universe_is_identity():
    subset = _basis_set_ta(3, {1, 5})
    universe = all_basis_states_ta(3)
    assert check_equivalence(intersection(subset, universe), subset).equivalent


def test_intersection_width_mismatch_raises():
    with pytest.raises(ValueError):
        intersection(all_basis_states_ta(2), all_basis_states_ta(3))


def test_intersection_count_matches_set_intersection():
    left = _basis_set_ta(4, {0, 3, 7, 9, 12})
    right = _basis_set_ta(4, {3, 9, 10, 15})
    assert count_language(intersection(left, right)) == 2


# --------------------------------------------------------------------------- complement
def test_complement_of_single_basis_state_within_basis_universe():
    automaton = basis_state_ta(2, 0)
    result = complement(automaton, BASIS_ALPHABET)
    # the universe contains all 2^(2^2) = 16 leaf labelings; removing one leaves 15
    assert count_language(result) == 15
    assert not result.accepts(QuantumState.basis_state(2, 0))
    assert result.accepts(QuantumState.basis_state(2, 3))
    # non-basis trees of the universe (e.g. the all-zero function) are included
    assert result.accepts(QuantumState(2))


def test_complement_of_all_basis_states():
    automaton = all_basis_states_ta(2)
    result = complement(automaton, BASIS_ALPHABET)
    assert count_language(result) == 16 - 4
    for index in range(4):
        assert not result.accepts(QuantumState.basis_state(2, index))


def test_double_complement_restores_language():
    automaton = _basis_set_ta(2, {1, 2})
    restored = complement(complement(automaton, BASIS_ALPHABET), BASIS_ALPHABET)
    assert check_equivalence(automaton, restored).equivalent


def test_complement_of_empty_language_is_whole_universe():
    from repro.ta.automaton import TreeAutomaton

    empty = TreeAutomaton(2, set(), {}, {})
    result = complement(empty, BASIS_ALPHABET)
    assert count_language(result) == 16


def test_complement_requires_alphabet():
    from repro.ta.automaton import TreeAutomaton

    empty = TreeAutomaton(1, set(), {}, {})
    with pytest.raises(ValueError):
        complement(empty)


def test_complement_respects_larger_alphabet():
    half = AlgebraicNumber(1, 0, 0, 0, 2)
    automaton = basis_state_ta(1, 0)
    result = complement(automaton, (ZERO, ONE, half))
    # universe has 3^2 = 9 trees, minus |0>
    assert count_language(result) == 8
    assert result.accepts(QuantumState(1, {(0,): half, (1,): half}))


# --------------------------------------------------------------------------- difference
def test_difference_of_basis_sets():
    left = _basis_set_ta(3, {0, 1, 2, 3})
    right = _basis_set_ta(3, {2, 3})
    result = difference(left, right)
    expected = _basis_set_ta(3, {0, 1})
    assert check_equivalence(result, expected).equivalent


def test_difference_is_empty_iff_inclusion_holds():
    small = _basis_set_ta(3, {1, 2})
    large = _basis_set_ta(3, {1, 2, 3})
    assert difference(small, large).is_empty()
    assert check_inclusion(small, large).holds
    assert not difference(large, small).is_empty()
    assert not check_inclusion(large, small).holds


def test_difference_with_itself_is_empty():
    automaton = all_basis_states_ta(3)
    assert difference(automaton, automaton).is_empty()


def test_de_morgan_on_basis_sets():
    """complement(A ∪ B) == complement(A) ∩ complement(B) within the basis universe."""
    left = _basis_set_ta(2, {0, 1})
    right = _basis_set_ta(2, {1, 2})
    lhs = complement(left.union(right), BASIS_ALPHABET)
    rhs = intersection(complement(left, BASIS_ALPHABET), complement(right, BASIS_ALPHABET))
    assert check_equivalence(lhs, rhs).equivalent


@settings(max_examples=20, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=7), min_size=0, max_size=5),
    st.sets(st.integers(min_value=0, max_value=7), min_size=0, max_size=5),
)
def test_property_boolean_algebra_on_basis_sets(left_indices, right_indices):
    """Intersection / difference on basis-state TAs mirror Python set algebra."""
    num_qubits = 3
    if not left_indices or not right_indices:
        return
    left = _basis_set_ta(num_qubits, left_indices)
    right = _basis_set_ta(num_qubits, right_indices)
    expected_intersection = left_indices & right_indices
    expected_difference = left_indices - right_indices
    got_intersection = intersection(left, right)
    got_difference = difference(left, right)
    assert count_language(got_intersection) == len(expected_intersection)
    assert count_language(got_difference) == len(expected_difference)
    for index in expected_intersection:
        assert got_intersection.accepts(QuantumState.basis_state(num_qubits, index))
    for index in expected_difference:
        assert got_difference.accepts(QuantumState.basis_state(num_qubits, index))


# ---------------------------------------------------------- laws vs brute force
# Property tests pinning the algebraic laws of the boolean layer against the
# exhaustive brute-force language enumeration from the fuzzing oracles: every
# labelled tree of the (≤ 3 qubit, binary alphabet) universe is checked
# individually, so these fail on *any* systematic automata-construction bug —
# e.g. a complement whose final-state set was flipped instead of built by
# layered subset construction.


def _brute(automaton, num_qubits):
    from repro.fuzz.oracles import boolean_universe, brute_language

    return brute_language(automaton, boolean_universe(num_qubits, BASIS_ALPHABET))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
)
def test_property_de_morgan_vs_brute_force(num_qubits, left_raw, right_raw):
    """complement(A ∪ B) == complement(A) ∩ complement(B), tree for tree."""
    size = 2 ** num_qubits
    left = _basis_set_ta(num_qubits, {i % size for i in left_raw})
    right = _basis_set_ta(num_qubits, {i % size for i in right_raw})
    lhs = complement(left.union(right), BASIS_ALPHABET)
    rhs = intersection(
        complement(left, BASIS_ALPHABET), complement(right, BASIS_ALPHABET)
    )
    assert _brute(lhs, num_qubits) == _brute(rhs, num_qubits)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
)
def test_property_double_complement_vs_brute_force(num_qubits, raw):
    """complement(complement(A)) == A within the binary-alphabet universe."""
    size = 2 ** num_qubits
    automaton = _basis_set_ta(num_qubits, {i % size for i in raw})
    restored = complement(complement(automaton, BASIS_ALPHABET), BASIS_ALPHABET)
    assert _brute(restored, num_qubits) == _brute(automaton, num_qubits)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
)
def test_property_difference_is_intersection_with_complement(num_qubits, left_raw, right_raw):
    """difference(A, B) == intersection(A, complement(B)), tree for tree."""
    size = 2 ** num_qubits
    left = _basis_set_ta(num_qubits, {i % size for i in left_raw})
    right = _basis_set_ta(num_qubits, {i % size for i in right_raw})
    via_difference = difference(left, right)
    via_complement = intersection(left, complement(right, BASIS_ALPHABET))
    assert _brute(via_difference, num_qubits) == _brute(via_complement, num_qubits)
