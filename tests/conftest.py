"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, Gate
from repro.core.engine import reset_gate_runtime
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState


@pytest.fixture(autouse=True)
def _pristine_gate_runtime():
    """Reset the process-default gate runtime before every test.

    The default runtime (gate-application memo + optionally attached on-disk
    store) is process-wide state behind the legacy free-function API; without
    this reset, test ordering could change memo/store hit counters and make
    cache-behaviour assertions flaky.  Sessions are unaffected — they own
    private runtimes.
    """
    reset_gate_runtime()
    yield


@pytest.fixture
def simulator() -> StateVectorSimulator:
    """A fresh exact simulator."""
    return StateVectorSimulator()


@pytest.fixture
def epr_circuit() -> Circuit:
    """The 2-qubit EPR (Bell-state) circuit from the paper's overview."""
    return Circuit(2, name="epr").add("h", 0).add("cx", 0, 1)


@pytest.fixture
def ghz_circuit() -> Circuit:
    """A 3-qubit GHZ-state preparation circuit."""
    return Circuit(3, name="ghz").add("h", 0).add("cx", 0, 1).add("cx", 1, 2)


def assert_states_close(left: QuantumState, right: QuantumState, tolerance: float = 1e-9) -> None:
    """Assert two exact states denote (numerically) the same vector."""
    assert left.num_qubits == right.num_qubits
    keys = {bits for bits, _ in left.items()} | {bits for bits, _ in right.items()}
    for bits in keys:
        delta = abs(left[bits].to_complex() - right[bits].to_complex())
        assert delta < tolerance, f"amplitudes differ at {bits}: {left[bits]} vs {right[bits]}"
