"""Tests for the benchmark circuit generators (BV, Grover, MCToffoli, RevLib, Feynman)."""

import pytest

from repro.benchgen import (
    VerificationBenchmark,
    append_multi_controlled_x,
    append_multi_controlled_z,
    bv_benchmark,
    bv_circuit,
    carry_lookahead_adder,
    controlled_increment,
    csum_mux,
    default_hidden_string,
    default_iterations,
    feynman_suite,
    gf2_multiplier,
    grover_all_benchmark,
    grover_single_benchmark,
    grover_single_circuit,
    hidden_weighted_bit_like,
    mctoffoli_benchmark,
    mctoffoli_circuit,
    mctoffoli_layout,
    parity_network,
    revlib_suite,
    ripple_carry_adder,
    unstructured_reversible,
)
from repro.circuits import Circuit
from repro.core import verify_triple
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState, bits_to_int, int_to_bits


class TestMultiControlledHelpers:
    @pytest.mark.parametrize("num_controls", [0, 1, 2, 3, 4])
    def test_mcx_truth_table(self, num_controls, simulator):
        ancillas = list(range(num_controls + 1, num_controls + 1 + max(0, num_controls - 1)))
        total = num_controls + 1 + len(ancillas)
        circuit = Circuit(max(total, num_controls + 1))
        append_multi_controlled_x(circuit, list(range(num_controls)), num_controls, ancillas)
        for controls_value in range(1 << num_controls):
            bits = int_to_bits(controls_value, num_controls) + (0,) * (circuit.num_qubits - num_controls)
            output = simulator.run(circuit, QuantumState.basis_state(circuit.num_qubits, bits))
            expected_target = 1 if controls_value == (1 << num_controls) - 1 else 0
            expected_bits = list(bits)
            expected_bits[num_controls] = expected_target
            assert output == QuantumState.basis_state(circuit.num_qubits, tuple(expected_bits))

    def test_mcz_phase_semantics(self, simulator):
        circuit = Circuit(6)
        append_multi_controlled_z(circuit, [0, 1, 2], 3, [4, 5])
        all_ones = QuantumState.basis_state(6, (1, 1, 1, 1, 0, 0))
        assert simulator.run(circuit, all_ones) == all_ones.scaled(
            __import__("repro.algebraic", fromlist=["AlgebraicNumber"]).AlgebraicNumber(-1, 0, 0, 0, 0)
        )
        not_all_ones = QuantumState.basis_state(6, (1, 0, 1, 1, 0, 0))
        assert simulator.run(circuit, not_all_ones) == not_all_ones

    def test_mcx_rejects_target_in_controls(self):
        with pytest.raises(ValueError):
            append_multi_controlled_x(Circuit(3), [0, 1], 1, [2])

    def test_mcx_requires_enough_ancillas(self):
        with pytest.raises(ValueError):
            append_multi_controlled_x(Circuit(5), [0, 1, 2, 3], 4, [])


class TestBernsteinVazirani:
    def test_default_hidden_string(self):
        assert default_hidden_string(4) == "1010"

    def test_circuit_recovers_hidden_string(self, simulator):
        hidden = "1101"
        circuit = bv_circuit(hidden)
        output = simulator.run(circuit, QuantumState.zero_state(circuit.num_qubits))
        assert output == QuantumState.basis_state(5, hidden + "1")

    def test_benchmark_triple_holds(self):
        benchmark = bv_benchmark(5)
        assert isinstance(benchmark, VerificationBenchmark)
        assert benchmark.num_qubits == 6
        result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
        assert result.holds

    def test_benchmark_with_custom_hidden_string(self):
        benchmark = bv_benchmark(4, hidden="0110")
        assert verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition).holds

    def test_hidden_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bv_benchmark(4, hidden="01")

    def test_gate_count_is_linear(self):
        assert bv_circuit("1" * 10).num_gates == 2 * 10 + 3 + 10


class TestMCToffoli:
    def test_layout_shape(self):
        layout = mctoffoli_layout(5)
        assert layout["num_qubits"] == 10
        assert len(layout["controls"]) == 5
        assert len(layout["work"]) == 4

    def test_gate_count_matches_paper_formula(self):
        # Table 2 reports #G = 2n - 1 for the MCToffoli circuits
        for n in (4, 8, 10):
            assert mctoffoli_circuit(n).num_gates == 2 * n - 1

    def test_small_sizes_rejected(self):
        with pytest.raises(ValueError):
            mctoffoli_layout(1)

    def test_semantics_on_basis_states(self, simulator):
        num_controls = 3
        layout = mctoffoli_layout(num_controls)
        circuit = mctoffoli_circuit(num_controls)
        for controls_value in range(1 << num_controls):
            bits = [0] * layout["num_qubits"]
            for position, control in enumerate(layout["controls"]):
                bits[control] = (controls_value >> (num_controls - 1 - position)) & 1
            state = QuantumState.basis_state(layout["num_qubits"], tuple(bits))
            output = simulator.run(circuit, state)
            expected = list(bits)
            if controls_value == (1 << num_controls) - 1:
                expected[layout["target"]] ^= 1
            assert output == QuantumState.basis_state(layout["num_qubits"], tuple(expected))

    def test_benchmark_triple_holds(self):
        benchmark = mctoffoli_benchmark(4)
        assert verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition).holds


class TestGrover:
    def test_default_iterations(self):
        assert default_iterations(2) == 1
        assert default_iterations(4) == 3

    def test_single_oracle_amplifies_the_secret(self, simulator):
        secret = "101"
        circuit = grover_single_circuit(3, secret)
        output = simulator.run(circuit, QuantumState.zero_state(circuit.num_qubits))
        tail = (0,) * 2 + (1,)
        secret_amp = abs(output[(1, 0, 1) + tail].to_complex()) ** 2
        other_amp = abs(output[(0, 0, 0) + tail].to_complex()) ** 2
        assert secret_amp > 0.8
        assert secret_amp > 10 * other_amp

    def test_single_benchmark_triple_holds(self):
        benchmark = grover_single_benchmark(2)
        assert verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition).holds

    def test_single_benchmark_with_secret(self):
        benchmark = grover_single_benchmark(3, secret="010")
        assert verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition).holds

    def test_all_oracle_benchmark_triple_holds(self):
        benchmark = grover_all_benchmark(2)
        assert verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition).holds
        assert benchmark.num_qubits == 6

    def test_too_few_work_qubits_rejected(self):
        with pytest.raises(ValueError):
            grover_single_circuit(1, "1")

    def test_secret_length_validation(self):
        with pytest.raises(ValueError):
            grover_single_circuit(3, "10")


class TestRevLibGenerators:
    def test_ripple_adder_computes_sums(self, simulator):
        num_bits = 3
        circuit = ripple_carry_adder(num_bits)
        for a_value, b_value in ((1, 2), (3, 5), (7, 7), (0, 6)):
            bits = [0] * circuit.num_qubits
            a_bits = int_to_bits(a_value, num_bits)
            b_bits = int_to_bits(b_value, num_bits)
            for i in range(num_bits):
                bits[1 + i] = a_bits[num_bits - 1 - i]          # a register, LSB first
                bits[1 + num_bits + i] = b_bits[num_bits - 1 - i]  # b register, LSB first
            output = simulator.run(circuit, QuantumState.basis_state(circuit.num_qubits, tuple(bits)))
            ((out_bits, amplitude),) = list(output.items())
            total = sum(out_bits[1 + num_bits + i] << i for i in range(num_bits))
            carry = out_bits[-1]
            assert total + (carry << num_bits) == a_value + b_value

    def test_adders_are_reversible_and_classical(self):
        circuit = ripple_carry_adder(4)
        assert all(gate.kind in ("cx", "ccx") for gate in circuit)

    def test_controlled_increment_wraps_around(self, simulator):
        circuit = controlled_increment(2, num_controls=1)
        # control=1, register=11 (MSBF order register[0] is LSB internally)
        state = QuantumState.basis_state(circuit.num_qubits, (1, 1, 1) + (0,) * (circuit.num_qubits - 3))
        output = simulator.run(circuit, state)
        ((bits, _),) = list(output.items())
        assert bits[1] == 0 and bits[2] == 0  # 3 + 1 == 0 mod 4

    def test_parity_network_structure(self):
        circuit = parity_network(9)
        assert circuit.num_qubits > 9
        assert circuit.count_kind("cx") > 0
        with pytest.raises(ValueError):
            parity_network(2)

    def test_unstructured_reversible_is_deterministic(self):
        assert unstructured_reversible(5, 20, seed=3) == unstructured_reversible(5, 20, seed=3)
        assert unstructured_reversible(5, 20, seed=3) != unstructured_reversible(5, 20, seed=4)

    def test_hidden_weighted_bit_like_uses_fredkin_structure(self):
        circuit = hidden_weighted_bit_like(4)
        assert circuit.count_kind("cswap") > 0
        with pytest.raises(ValueError):
            hidden_weighted_bit_like(2)

    def test_revlib_suite_names_and_sizes(self):
        suite = revlib_suite()
        assert len(suite) >= 8
        for name, circuit in suite.items():
            assert circuit.num_gates > 0
            assert circuit.num_qubits >= 2


class TestFeynmanGenerators:
    def test_gf2_multiplier_matches_classical_multiplication(self, simulator):
        degree = 3
        circuit = gf2_multiplier(degree)

        def gf2_mult(a: int, b: int) -> int:
            # multiply polynomials over GF(2), reduce modulo x^3 + x + 1
            product = 0
            for i in range(degree):
                if (a >> i) & 1:
                    product ^= b << i
            for power in range(2 * degree - 2, degree - 1, -1):
                if (product >> power) & 1:
                    product ^= (0b1011 << (power - degree))
            return product & ((1 << degree) - 1)

        for a_value, b_value in ((1, 1), (3, 5), (7, 6), (2, 4)):
            bits = [0] * circuit.num_qubits
            for i in range(degree):
                bits[i] = (a_value >> i) & 1          # a_i corresponds to x^i
                bits[degree + i] = (b_value >> i) & 1
            output = simulator.run(circuit, QuantumState.basis_state(circuit.num_qubits, tuple(bits)))
            ((out_bits, _),) = list(output.items())
            result = sum(out_bits[2 * degree + i] << i for i in range(degree))
            assert result == gf2_mult(a_value, b_value), (a_value, b_value)

    def test_gf2_multiplier_validation(self):
        with pytest.raises(ValueError):
            gf2_multiplier(1)

    def test_csum_mux_selects_between_words(self, simulator):
        circuit = csum_mux(2)
        assert circuit.num_qubits == 8
        assert circuit.count_kind("ccx") == 2

    def test_carry_lookahead_adder_structure(self):
        circuit = carry_lookahead_adder(4)
        assert circuit.count_kind("ccx") > 0
        with pytest.raises(ValueError):
            carry_lookahead_adder(1)

    def test_feynman_suite(self):
        suite = feynman_suite()
        assert any(name.startswith("gf2^") for name in suite)
        assert all(circuit.num_gates > 0 for circuit in suite.values())
