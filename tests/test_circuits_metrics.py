"""Tests for the static circuit metrics (depth, moments, T-count, engine profile)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import ghz_circuit, grover_single_circuit, qft_circuit
from repro.circuits import (
    Circuit,
    depth,
    engine_cost_profile,
    gate_histogram,
    moments,
    qubit_depths,
    random_circuit,
    summarise,
    t_count,
    two_qubit_count,
)


# --------------------------------------------------------------------------- histogram / counts
def test_gate_histogram_counts_every_kind():
    circuit = Circuit(3).add("h", 0).add("h", 1).add("cx", 0, 1).add("t", 2).add("t", 0)
    assert gate_histogram(circuit) == {"cx": 1, "h": 2, "t": 2}


def test_t_count_counts_t_tdg_and_controlled_phases():
    circuit = Circuit(3).add("t", 0).add("tdg", 1).add("ct", 0, 1).add("ctdg", 1, 2).add("s", 0)
    assert t_count(circuit) == 4


def test_t_count_charges_seven_per_toffoli():
    circuit = Circuit(3).add("ccx", 0, 1, 2).add("t", 0)
    assert t_count(circuit) == 8


def test_two_qubit_count_after_decomposition():
    circuit = Circuit(3).add("swap", 0, 1).add("h", 2)
    # swap decomposes into three CNOTs
    assert two_qubit_count(circuit) == 3


# --------------------------------------------------------------------------- moments / depth
def test_parallel_gates_share_a_moment():
    circuit = Circuit(4).add("h", 0).add("h", 1).add("h", 2).add("h", 3)
    assert depth(circuit) == 1
    assert len(moments(circuit)[0]) == 4


def test_dependent_gates_stack_up():
    circuit = Circuit(2).add("h", 0).add("cx", 0, 1).add("h", 1)
    assert depth(circuit) == 3


def test_moments_respect_qubit_conflicts():
    circuit = Circuit(3).add("cx", 0, 1).add("cx", 1, 2).add("x", 0)
    layers = moments(circuit)
    assert [len(layer) for layer in layers] == [1, 2]
    # the x on qubit 0 fits next to the second CNOT (disjoint qubits)
    kinds_in_second = sorted(gate.kind for gate in layers[1])
    assert kinds_in_second == ["cx", "x"]


def test_depth_of_empty_circuit_is_zero():
    assert depth(Circuit(3)) == 0
    assert moments(Circuit(3)) == []


def test_ghz_depth_is_linear():
    assert depth(ghz_circuit(6)) == 6  # H then a strictly sequential CNOT chain


def test_qubit_depths_count_touches():
    circuit = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2)
    assert qubit_depths(circuit) == {0: 2, 1: 2, 2: 1}


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=3, max_value=6))
def test_property_moments_partition_the_gates(seed, num_qubits):
    circuit = random_circuit(num_qubits, seed=seed)
    layers = moments(circuit)
    assert sum(len(layer) for layer in layers) == circuit.num_gates
    for layer in layers:
        touched = [qubit for gate in layer for qubit in gate.qubits]
        assert len(touched) == len(set(touched))  # gates in one moment are disjoint
    assert depth(circuit) <= circuit.num_gates


# --------------------------------------------------------------------------- engine profile
def test_engine_profile_of_clifford_t_circuit():
    circuit = Circuit(3).add("h", 0).add("cx", 0, 1).add("t", 2).add("ccx", 0, 1, 2)
    profile = engine_cost_profile(circuit)
    assert profile == {"permutation": 3, "composition": 1}  # only the Hadamard falls back


def test_engine_profile_counts_misordered_controls_as_composition():
    circuit = Circuit(2).add("cx", 1, 0)  # control above target: permutation encoding refuses
    assert engine_cost_profile(circuit) == {"permutation": 0, "composition": 1}


def test_engine_profile_of_grover_matches_statistics():
    from repro.core import run_circuit, zero_state_precondition

    circuit = grover_single_circuit(2, "10")
    profile = engine_cost_profile(circuit)
    result = run_circuit(circuit.decomposed(), zero_state_precondition(circuit.num_qubits))
    assert result.statistics.gates_permutation == profile["permutation"]
    assert result.statistics.gates_composition == profile["composition"]


# --------------------------------------------------------------------------- summary
def test_summarise_contains_all_fields():
    summary = summarise(qft_circuit(4))
    assert summary["qubits"] == 4
    assert summary["gates"] == qft_circuit(4).num_gates
    assert summary["gates_decomposed"] >= summary["gates"]
    assert summary["depth"] >= 1
    assert summary["t_count"] == 2          # the two ct gates
    assert summary["histogram"]["h"] == 4
    assert summary["permutation_gates"] + summary["composition_gates"] == summary["gates_decomposed"]
