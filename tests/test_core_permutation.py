"""Tests for the permutation-based gate encoding (Theorems 5.1 - 5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Gate
from repro.core.formulas import apply_gate_to_state
from repro.core.permutation import (
    PermutationUnsupported,
    apply_permutation_gate,
    supports_permutation,
)
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    check_equivalence,
    from_quantum_state,
    from_quantum_states,
)

PERMUTATION_SINGLE = ["x", "y", "z", "s", "sdg", "t", "tdg"]


def expected_automaton(automaton, gate):
    """Reference result: apply the gate to every accepted tree explicitly."""
    states = automaton.enumerate_states(limit=64)
    return from_quantum_states([apply_gate_to_state(gate, s) for s in states])


class TestSupportPredicate:
    def test_single_qubit_gates_supported(self):
        for kind in PERMUTATION_SINGLE:
            assert supports_permutation(Gate(kind, (0,)))

    def test_h_and_rotations_unsupported(self):
        for kind in ("h", "rx", "ry"):
            assert not supports_permutation(Gate(kind, (0,)))

    def test_controlled_gates_require_control_below_target(self):
        assert supports_permutation(Gate("cx", (0, 1)))
        assert not supports_permutation(Gate("cx", (1, 0)))
        assert supports_permutation(Gate("cz", (1, 0)))  # CZ is symmetric
        assert supports_permutation(Gate("ccx", (0, 1, 2)))
        assert not supports_permutation(Gate("ccx", (0, 2, 1)))

    def test_apply_raises_on_unsupported(self):
        automaton = basis_state_ta(2, "00")
        with pytest.raises(PermutationUnsupported):
            apply_permutation_gate(automaton, Gate("h", (0,)))
        with pytest.raises(PermutationUnsupported):
            apply_permutation_gate(automaton, Gate("cx", (1, 0)))
        with pytest.raises(PermutationUnsupported):
            apply_permutation_gate(automaton, Gate("ccx", (0, 2, 1)))


class TestTheorem51And52SingleQubit:
    @pytest.mark.parametrize("kind", PERMUTATION_SINGLE)
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_on_all_basis_states(self, kind, target):
        automaton = all_basis_states_ta(3)
        gate = Gate(kind, (target,))
        result = apply_permutation_gate(automaton, gate)
        assert check_equivalence(result, expected_automaton(automaton, gate)).equivalent

    @pytest.mark.parametrize("kind", PERMUTATION_SINGLE)
    def test_on_single_basis_state(self, kind):
        automaton = basis_state_ta(3, "101")
        gate = Gate(kind, (1,))
        result = apply_permutation_gate(automaton, gate)
        expected = from_quantum_state(apply_gate_to_state(gate, QuantumState.basis_state(3, "101")))
        assert check_equivalence(result, expected).equivalent

    def test_x_only_swaps_children(self):
        automaton = basis_state_ta(2, "00")
        result = apply_permutation_gate(automaton, Gate("x", (0,)))
        assert result.num_states == automaton.num_states
        assert result.accepts(QuantumState.basis_state(2, "10"))


class TestTheorem53Controlled:
    @pytest.mark.parametrize("gate", [
        Gate("cx", (0, 1)), Gate("cx", (0, 2)), Gate("cx", (1, 2)),
        Gate("cz", (0, 1)), Gate("cz", (1, 0)), Gate("cz", (2, 0)),
        Gate("ccx", (0, 1, 2)), Gate("ccx", (1, 0, 2)),
    ])
    def test_on_all_basis_states(self, gate):
        automaton = all_basis_states_ta(3)
        result = apply_permutation_gate(automaton, gate)
        assert check_equivalence(result, expected_automaton(automaton, gate)).equivalent

    def test_on_product_form_sets(self):
        automaton = basis_product_ta(4, [{0, 1}, {0}, {0, 1}, {1}])
        for gate in (Gate("cx", (0, 3)), Gate("ccx", (0, 2, 3)), Gate("cz", (3, 0))):
            result = apply_permutation_gate(automaton, gate)
            assert check_equivalence(result, expected_automaton(automaton, gate)).equivalent

    def test_on_superposition_states(self):
        from repro.algebraic import SQRT2_INV

        plus_minus = QuantumState(2, {(0, 0): SQRT2_INV, (1, 0): -SQRT2_INV})
        automaton = from_quantum_state(plus_minus)
        gate = Gate("cx", (0, 1))
        result = apply_permutation_gate(automaton, gate)
        expected = from_quantum_state(apply_gate_to_state(gate, plus_minus))
        assert check_equivalence(result, expected).equivalent


class TestRandomisedAgainstReference:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_random_permutation_gate_on_random_sets(self, seed):
        import random

        rng = random.Random(seed)
        num_qubits = rng.randint(2, 4)
        allowed = [rng.choice([{0}, {1}, {0, 1}]) for _ in range(num_qubits)]
        automaton = basis_product_ta(num_qubits, allowed)
        kind = rng.choice(PERMUTATION_SINGLE + ["cx", "cz", "ccx"])
        arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
        if arity > num_qubits:
            kind, arity = "x", 1
        qubits = sorted(rng.sample(range(num_qubits), arity))
        gate = Gate(kind, tuple(qubits))
        result = apply_permutation_gate(automaton, gate)
        assert check_equivalence(result, expected_automaton(automaton, gate)).equivalent
