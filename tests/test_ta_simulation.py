"""Tests for the maximum downward simulation and simulation-based reduction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import ONE, AlgebraicNumber
from repro.circuits import Circuit
from repro.core import run_circuit, zero_state_precondition
from repro.states import QuantumState
from repro.ta import (
    all_basis_states_ta,
    basis_state_ta,
    check_equivalence,
    count_language,
    from_quantum_states,
)
from repro.ta.automaton import TreeAutomaton, make_symbol
from repro.ta.simulation import (
    downward_simulation,
    simulation_equivalence_classes,
    simulation_reduce,
)

HALF = AlgebraicNumber(1, 0, 0, 0, 2)  # 1/2


def _random_basis_sets(num_qubits: int, count: int, seed: int):
    rng = random.Random(seed)
    population = list(range(1 << num_qubits))
    chosen = rng.sample(population, min(count, len(population)))
    return [QuantumState.basis_state(num_qubits, index) for index in chosen]


# --------------------------------------------------------------------------- relation
def test_identical_sibling_states_simulate_each_other():
    # two states generating exactly the same subtree must be mutually related
    automaton = TreeAutomaton(
        1,
        roots={0},
        internal={0: [(make_symbol(0), 1, 2)], 3: [(make_symbol(0), 1, 1)]},
        leaves={1: ONE, 2: ONE},
    )
    relation = downward_simulation(automaton)
    assert (1, 2) in relation and (2, 1) in relation


def test_leaves_with_different_amplitudes_are_unrelated():
    automaton = TreeAutomaton(
        1,
        roots={0},
        internal={0: [(make_symbol(0), 1, 2)]},
        leaves={1: ONE, 2: HALF},
    )
    relation = downward_simulation(automaton)
    assert (1, 2) not in relation and (2, 1) not in relation


def test_strict_simulation_is_detected():
    # state 1 generates only the all-zero pair, state 2 generates both pairs:
    # 1 is simulated by 2 but not vice versa.
    zero = AlgebraicNumber(0, 0, 0, 0, 0)
    automaton = TreeAutomaton(
        2,
        roots={0},
        internal={
            0: [(make_symbol(0), 1, 2)],
            1: [(make_symbol(1), 3, 3)],
            2: [(make_symbol(1), 3, 3), (make_symbol(1), 4, 3)],
        },
        leaves={3: zero, 4: ONE},
    )
    relation = downward_simulation(automaton)
    assert (1, 2) in relation
    assert (2, 1) not in relation


def test_simulation_of_all_basis_states_ta():
    automaton = all_basis_states_ta(3)
    relation = downward_simulation(automaton)
    # the "all zeros below" states are simulated by the "one 1 below" states
    # at the same level, never the other way around
    for small, large in relation:
        assert (large, small) not in relation or small == large


# --------------------------------------------------------------------------- classes
def test_equivalence_classes_partition_the_states():
    automaton = all_basis_states_ta(3).reduce()
    classes = simulation_equivalence_classes(automaton)
    states = sorted(automaton.remove_useless().states)
    flattened = sorted(state for block in classes for state in block)
    assert flattened == states


def test_duplicate_union_collapses_to_one_class_per_role():
    single = basis_state_ta(2, 0)
    duplicated = single.union(single.relabelled().shifted(100))
    classes = simulation_equivalence_classes(duplicated)
    # every state of the first copy is equivalent to its twin in the second copy
    assert all(len(block) >= 2 for block in classes)


# --------------------------------------------------------------------------- reduction
@pytest.mark.parametrize("num_qubits,count,seed", [(2, 2, 1), (3, 4, 2), (3, 6, 3), (4, 5, 4)])
def test_simulation_reduce_preserves_language(num_qubits, count, seed):
    states = _random_basis_sets(num_qubits, count, seed)
    automaton = from_quantum_states(states, reduce=False)
    reduced = simulation_reduce(automaton)
    assert check_equivalence(automaton, reduced).equivalent
    assert count_language(reduced) == len(states)


def test_simulation_reduce_never_larger_than_lightweight_reduce():
    automaton = all_basis_states_ta(4).union(basis_state_ta(4, 5))
    lightweight = automaton.reduce()
    full = simulation_reduce(automaton)
    assert full.num_states <= lightweight.num_states
    assert full.num_transitions <= lightweight.num_transitions
    assert check_equivalence(full, lightweight).equivalent


def test_simulation_reduce_drops_dominated_duplicate_union():
    single = basis_state_ta(3, 0)
    doubled = single.union(single.relabelled().shifted(50))
    reduced = simulation_reduce(doubled)
    assert check_equivalence(single, reduced).equivalent
    assert reduced.num_states <= single.num_states
    assert reduced.num_transitions <= single.num_transitions


def test_simulation_reduce_on_empty_automaton():
    empty = TreeAutomaton(2, set(), {}, {})
    reduced = simulation_reduce(empty)
    assert reduced.is_empty()


def test_simulation_reduce_without_pruning_still_preserves_language():
    automaton = all_basis_states_ta(3)
    reduced = simulation_reduce(automaton, prune_transitions=False)
    assert check_equivalence(automaton, reduced).equivalent


def test_simulation_reduce_after_circuit_analysis(epr_circuit):
    result = run_circuit(epr_circuit, zero_state_precondition(2))
    reduced = simulation_reduce(result.output)
    assert check_equivalence(result.output, reduced).equivalent
    assert reduced.num_states <= result.output.num_states


def test_simulation_reduce_on_grover_like_superposition(ghz_circuit):
    result = run_circuit(ghz_circuit, zero_state_precondition(3))
    reduced = simulation_reduce(result.output)
    assert check_equivalence(result.output, reduced).equivalent


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
)
def test_property_reduction_preserves_count(num_qubits, indices):
    indices = {index % (1 << num_qubits) for index in indices}
    states = [QuantumState.basis_state(num_qubits, index) for index in sorted(indices)]
    automaton = from_quantum_states(states, reduce=False)
    reduced = simulation_reduce(automaton)
    assert count_language(reduced) == len(states)
    assert check_equivalence(automaton, reduced).equivalent


def test_relation_is_transitive_on_sample():
    automaton = all_basis_states_ta(3).union(basis_state_ta(3, 1))
    relation = set(downward_simulation(automaton))
    closure_violations = [
        (a, b, c)
        for (a, b) in relation
        for (b2, c) in relation
        if b == b2 and c != a and (a, c) not in relation
    ]
    assert not closure_violations
