"""Property tests: reductions preserve the language and never grow the TA.

Randomized product-form automata (per-qubit classical constraints, the shape
used by the bug hunter) and explicit-state automata (finite sets of quantum
states with algebraic amplitudes) are bloated with redundant copies; both
``reduce()`` and ``simulation_reduce()`` must return an automaton with the
same language (``accepts`` / ``enumerate_states`` unchanged) and at most the
original number of states and transitions.  The hash-consing fast paths are
pinned too: reducing an already-reduced automaton returns it unchanged, and
interned symbols/transitions are shared objects.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import AlgebraicNumber
from repro.states import QuantumState
from repro.ta import (
    basis_product_ta,
    from_quantum_states,
    intern_transition,
    make_symbol,
    simulation_reduce,
)

_AMPLITUDES = [
    AlgebraicNumber(1, 0, 0, 0, 0),   # 1
    AlgebraicNumber(-1, 0, 0, 0, 0),  # -1
    AlgebraicNumber(0, 1, 0, 0, 0),   # w
    AlgebraicNumber(1, 0, 0, 0, 1),   # 1/sqrt(2)
    AlgebraicNumber(0, 0, 1, 0, 1),   # i/sqrt(2)
]


def _product_form_ta(seed: int):
    rng = random.Random(seed)
    num_qubits = rng.randint(1, 4)
    allowed = [rng.choice([{0}, {1}, {0, 1}]) for _ in range(num_qubits)]
    return basis_product_ta(num_qubits, allowed)


def _explicit_states_ta(seed: int):
    rng = random.Random(seed)
    num_qubits = rng.randint(1, 3)
    states = []
    for _ in range(rng.randint(1, 3)):
        state = QuantumState(num_qubits)
        for bits in range(2 ** num_qubits):
            if rng.random() < 0.4:
                assignment = tuple((bits >> i) & 1 for i in reversed(range(num_qubits)))
                state[assignment] = rng.choice(_AMPLITUDES)
        if state:
            states.append(state)
    if not states:
        states.append(QuantumState.zero_state(num_qubits))
    return from_quantum_states(states, reduce=False)


def _language(automaton):
    return frozenset(automaton.enumerate_states(limit=64))


def _bloat(automaton):
    """A language-preserving automaton with duplicated structure to merge."""
    return automaton.union(automaton.shifted(automaton.next_free_state() + 17))


def _check_reduction(original, reduce_fn):
    bloated = _bloat(original)
    reduced = reduce_fn(bloated)
    assert reduced.num_states <= bloated.num_states
    assert reduced.num_transitions <= bloated.num_transitions
    assert _language(reduced) == _language(bloated) == _language(original)
    for state in _language(original):
        assert reduced.accepts(state)


class TestReducePreservesLanguage:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_product_form(self, seed):
        _check_reduction(_product_form_ta(seed), lambda a: a.reduce())

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_explicit_states(self, seed):
        _check_reduction(_explicit_states_ta(seed), lambda a: a.reduce())

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_reduce_merges_the_duplicated_copy(self, seed):
        original = _product_form_ta(seed).reduce()
        bloated = _bloat(original)
        assert bloated.reduce().num_states <= original.num_states


class TestSimulationReducePreservesLanguage:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_product_form(self, seed):
        _check_reduction(_product_form_ta(seed), simulation_reduce)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_explicit_states(self, seed):
        _check_reduction(_explicit_states_ta(seed), simulation_reduce)


class TestHashConsing:
    def test_reduce_of_reduced_automaton_is_identity(self):
        automaton = _bloat(_product_form_ta(42))
        reduced = automaton.reduce()
        assert reduced.reduce() is reduced

    def test_remove_useless_without_useless_states_is_identity(self):
        automaton = _product_form_ta(7)
        assert automaton.remove_useless() is automaton

    def test_symbols_are_interned(self):
        assert make_symbol(3) is make_symbol(3)
        assert make_symbol(2, (1, 4)) is make_symbol(2, (1, 4))

    def test_transitions_are_interned(self):
        symbol = make_symbol(0)
        assert intern_transition(symbol, 1, 2) is intern_transition(symbol, 1, 2)

    def test_equal_automata_share_transition_tuples(self):
        first = _product_form_ta(11)
        second = _product_form_ta(11)
        for state, transitions in first.internal.items():
            for ours, theirs in zip(transitions, second.internal[state]):
                assert ours is theirs

    def test_states_cache_matches_recomputation(self):
        automaton = _bloat(_explicit_states_ta(3))
        expected = set(automaton.roots) | set(automaton.internal) | set(automaton.leaves)
        for transitions in automaton.internal.values():
            for _symbol, left, right in transitions:
                expected.add(left)
                expected.add(right)
        assert automaton.states == frozenset(expected)
        assert automaton.states is automaton.states  # cached object
