"""Tests for the deterministic fault-injection framework (``repro.faults``).

Covers the plan/spec model (validation, JSON round-trips, env activation),
the injector's deterministic schedule (``every``/``rate``/``limit``), the
shared :class:`RetryPolicy`, and the store-level resilience the plan
exercises: retry-healed reads, corrupt-write quarantine, and graceful
degradation after a fault streak.  The end-to-end campaign/service chaos
runs live in ``tests/test_chaos_campaign.py``.
"""

import json
import os
import pickle
import random

import pytest

from repro.faults import (
    DEFAULT_CLIENT_RETRY,
    DEFAULT_STORE_RETRY,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    active_injector,
    corrupt_text,
    inject,
    install_fault_plan,
    install_injector,
    plan_from_env,
)
from repro.faults import plan as plan_module
from repro.ta import basis_state_ta
from repro.ta.store import QUARANTINE_DIR, AutomatonStore


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no process-wide plan armed."""
    install_injector(None)
    yield
    install_injector(None)


def _plan(site: str, **spec) -> FaultPlan:
    return FaultPlan(seed=spec.pop("seed", 0),
                     sites=(FaultSpec(site=site, **spec),))


#: retries without real sleeps, for fast store-integration tests
_FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="store.get", kind="explode")

    def test_schedule_bounds_validated(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="store.get", rate=1.5)
        with pytest.raises(ValueError, match="every"):
            FaultSpec(site="store.get", every=-1)
        with pytest.raises(ValueError, match="limit"):
            FaultSpec(site="store.get", limit=-2)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(site="store.get", kind="delay", delay_seconds=-0.5)

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultSpec.from_mapping("store.get", {"kind": "raise", "often": 1})


class TestFaultPlan:
    def test_json_round_trip_is_identity(self):
        plan = FaultPlan(seed=7, sites=(
            FaultSpec(site="store.put", kind="corrupt-payload", rate=0.05),
            FaultSpec(site="worker.cell", kind="raise", every=10, limit=2),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_sites_are_sorted_for_determinism(self):
        document = {"sites": {"worker.cell": {}, "store.get": {}}}
        plan = FaultPlan.from_mapping(document)
        assert [spec.site for spec in plan.sites] == ["store.get", "worker.cell"]

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultPlan.from_mapping({"seed": 1, "faults": {}})

    def test_invalid_json_and_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            FaultPlan.from_json("{ nope")
        with pytest.raises(ValueError, match="object"):
            FaultPlan.from_json("[1, 2]")

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 3, "sites": {"store.get": {"kind": "delay"}}}')
        plan = FaultPlan.from_file(str(path))
        assert plan.seed == 3
        assert plan.spec_for("store.get").kind == "delay"
        assert plan.spec_for("store.put") is None

    def test_plan_from_env_inline_and_path(self, tmp_path):
        assert plan_from_env({}) is None
        assert plan_from_env({"AUTOQ_REPRO_FAULTS": ""}) is None
        inline = plan_from_env(
            {"AUTOQ_REPRO_FAULTS": '{"seed": 2, "sites": {"store.put": {}}}'})
        assert inline.seed == 2
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 9, "sites": {}}')
        assert plan_from_env({"AUTOQ_REPRO_FAULTS": str(path)}).seed == 9


class TestFaultInjector:
    def test_every_fires_on_each_nth_invocation(self):
        injector = FaultInjector(_plan("store.get", kind="delay", every=3))
        fired = [injector.fire("store.get") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_limit_caps_total_firings(self):
        injector = FaultInjector(_plan("store.get", kind="delay", every=1, limit=2))
        fired = [injector.fire("store.get") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_rate_schedule_is_a_pure_function_of_the_plan(self):
        plan = _plan("store.put", kind="delay", rate=0.5, seed=123)
        left, right = FaultInjector(plan), FaultInjector(plan)
        fired_left = [left.fire("store.put") is not None for _ in range(64)]
        fired_right = [right.fire("store.put") is not None for _ in range(64)]
        assert fired_left == fired_right
        assert any(fired_left) and not all(fired_left)

    def test_rate_draw_is_invocation_indexed_alongside_every(self):
        # 'every' firing on an invocation must not shift later 'rate' draws
        mixed = FaultInjector(_plan("s", kind="delay", rate=0.3, every=5, seed=1))
        rate_only = FaultInjector(_plan("s", kind="delay", rate=0.3, seed=1))
        mixed_fired = [mixed.fire("s") is not None for _ in range(40)]
        rate_fired = [rate_only.fire("s") is not None for _ in range(40)]
        for index, fired in enumerate(rate_fired):
            if fired:
                assert mixed_fired[index]

    def test_unarmed_site_is_a_noop(self):
        injector = FaultInjector(_plan("store.get", kind="raise", every=1))
        assert injector.fire("store.put") is None
        assert injector.counters() == {}

    def test_raise_kind_raises_with_site_and_ordinal(self):
        injector = FaultInjector(_plan("worker.cell", kind="raise", every=2))
        assert injector.fire("worker.cell") is None
        with pytest.raises(InjectedFault) as caught:
            injector.fire("worker.cell")
        assert caught.value.site == "worker.cell"
        assert caught.value.ordinal == 2
        assert isinstance(caught.value, OSError)

    def test_injected_fault_pickles_like_a_pool_result(self):
        fault = InjectedFault("worker.cell", 3)
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert (clone.site, clone.ordinal) == ("worker.cell", 3)

    def test_counters_track_per_site_injections(self):
        injector = FaultInjector(_plan("store.get", kind="delay", every=2))
        for _ in range(6):
            injector.fire("store.get")
        assert injector.counters() == {"store.get": 3}
        assert injector.total_injected() == 3

    def test_corrupt_text_is_deterministic_and_damaging(self):
        text = json.dumps({"store_schema": 1, "automaton": {"leaves": [1, 2, 3]}})
        first = corrupt_text(text, random.Random(5))
        second = corrupt_text(text, random.Random(5))
        assert first == second
        assert first != text
        with pytest.raises(ValueError):
            json.loads(first)

    def test_all_kinds_are_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(site="s", kind=kind)


class TestInstallation:
    def test_inject_is_a_noop_without_a_plan(self):
        assert inject("store.get") is None

    def test_install_fault_plan_arms_and_disarms(self):
        injector = install_fault_plan(_plan("store.get", kind="raise", every=1))
        assert active_injector() is injector
        with pytest.raises(InjectedFault):
            inject("store.get")
        assert install_fault_plan(None) is None
        assert inject("store.get") is None

    def test_install_injector_returns_the_previous_one(self):
        outer = install_fault_plan(_plan("store.get", kind="delay", every=1))
        inner = FaultInjector(_plan("store.put", kind="delay", every=1))
        assert install_injector(inner) is outer
        assert active_injector() is inner
        assert install_injector(outer) is inner
        assert active_injector() is outer

    def test_env_plan_is_armed_lazily(self, monkeypatch):
        monkeypatch.setenv(plan_module.FAULTS_ENV_VAR,
                           '{"seed": 4, "sites": {"store.get": {"kind": "delay"}}}')
        monkeypatch.setattr(plan_module, "_ACTIVE_INJECTOR", None)
        monkeypatch.setattr(plan_module, "_ENV_CHECKED", False)
        injector = active_injector()
        assert injector is not None
        assert injector.plan.seed == 4
        # explicit installs beat the ambient env var from then on
        install_injector(None)
        assert active_injector() is None


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        sleeps, seen = [], []
        policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.0,
                             sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, on_retry=lambda a, e: seen.append(a)) == "ok"
        assert calls["n"] == 3
        assert seen == [1, 2]
        assert sleeps == [0.1, 0.2]  # exponential, no jitter

    def test_exhausted_attempts_raise_the_last_error(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)

        def always():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            policy.call(always)

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay=0.0, retryable=(OSError,))
        calls = {"n": 0}

        def wrong():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(wrong)
        assert calls["n"] == 1

    def test_backoff_is_capped_and_jitter_bounded(self):
        policy = RetryPolicy(attempts=9, base_delay=1.0, max_delay=4.0,
                             jitter=0.25)
        rng = random.Random(0)
        for attempt in range(1, 9):
            delay = policy.delay_for(attempt, rng)
            assert 0.0 <= delay <= 4.0 * 1.25

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)

    def test_shared_defaults_have_the_documented_shape(self):
        assert DEFAULT_STORE_RETRY.attempts == 3
        assert OSError in DEFAULT_STORE_RETRY.retryable
        assert DEFAULT_CLIENT_RETRY.attempts == 3
        assert DEFAULT_CLIENT_RETRY.max_delay > DEFAULT_STORE_RETRY.max_delay


class TestStoreResilience:
    def test_injected_read_fault_is_healed_by_retry(self, tmp_path):
        store = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        key = store.gate_key("fp", "h:0", "hybrid", True)
        assert store.put(key, basis_state_ta(1, "0"))
        install_fault_plan(_plan("store.get", kind="raise", every=1, limit=1))
        fresh = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        entry = fresh.get(key)
        assert entry is not None
        assert fresh.counters["retries"] == 1
        assert fresh.counters["hits"] == 1
        assert fresh.counters["quarantined"] == 0

    def test_persistent_read_fault_quarantines_the_entry(self, tmp_path):
        store = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        key = store.gate_key("fp", "h:0", "hybrid", True)
        assert store.put(key, basis_state_ta(1, "0"))
        install_fault_plan(_plan("store.get", kind="raise", every=1))
        fresh = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        assert fresh.get(key) is None
        assert fresh.counters["retries"] == 2  # attempts - 1
        assert fresh.counters["rejected"] == 1
        quarantine = tmp_path / QUARANTINE_DIR
        assert sorted(os.listdir(quarantine)) == [
            os.path.basename(fresh._path(key)),
            os.path.basename(fresh._path(key)) + ".reason",
        ]

    def test_corrupt_payload_put_is_quarantined_then_recomputable(self, tmp_path):
        install_fault_plan(_plan("store.put", kind="corrupt-payload", every=1,
                                 limit=1))
        store = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        key = store.gate_key("fp", "h:0", "hybrid", True)
        assert store.put(key, basis_state_ta(1, "0"))  # write "succeeds", torn
        fresh = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        assert fresh.get(key) is None
        assert fresh.counters["quarantined"] == 1
        reason_files = [name for name in os.listdir(tmp_path / QUARANTINE_DIR)
                        if name.endswith(".reason")]
        assert len(reason_files) == 1
        # the caller recomputes and republishes; the plan's limit is spent
        assert fresh.put(key, basis_state_ta(1, "0"))
        assert AutomatonStore(str(tmp_path), retry=_FAST_RETRY).get(key) is not None

    def test_fault_streak_disables_the_store(self, tmp_path):
        install_fault_plan(_plan("store.put", kind="raise", every=1))
        store = AutomatonStore(str(tmp_path), retry=RetryPolicy(attempts=1),
                               fault_threshold=2)
        key = store.gate_key("fp", "h:0", "hybrid", True)
        assert not store.put(key, basis_state_ta(1, "0"))
        assert not store.disabled
        assert not store.put(key, basis_state_ta(1, "0"))
        assert store.disabled
        # disabled means inert, not broken: every operation is a fast no-op
        assert store.get(key) is None
        assert not store.put(key, basis_state_ta(1, "0"))
        assert store.counter_snapshot()["disabled"] is True

    def test_a_success_resets_the_fault_streak(self, tmp_path):
        install_fault_plan(_plan("store.put", kind="raise", every=2))
        store = AutomatonStore(str(tmp_path), retry=RetryPolicy(attempts=1),
                               fault_threshold=2)
        key = store.gate_key("fp", "h:0", "hybrid", True)
        for index in range(8):  # alternating success/fault never hits the streak
            store.put(store.gate_key("fp", f"g:{index}", "hybrid", True),
                      basis_state_ta(1, "0"))
        assert not store.disabled

    def test_quarantine_shows_up_in_disk_stats_and_clear(self, tmp_path):
        store = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        key = store.gate_key("fp", "h:0", "hybrid", True)
        store.put(key, basis_state_ta(1, "0"))
        with open(store._path(key), "w", encoding="utf-8") as handle:
            handle.write("{ torn")
        fresh = AutomatonStore(str(tmp_path), retry=_FAST_RETRY)
        assert fresh.get(key) is None
        stats = AutomatonStore.disk_stats(str(tmp_path))
        assert stats["quarantined_entries"] == 1
        fresh.clear()  # returns live entries only; quarantine is swept too
        assert os.listdir(tmp_path / QUARANTINE_DIR) == []
        assert AutomatonStore.disk_stats(str(tmp_path))["quarantined_entries"] == 0
