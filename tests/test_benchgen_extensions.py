"""Tests for the QFT and state-preparation benchmark families."""

from __future__ import annotations

import pytest

from repro.baselines import check_unitary_equivalence
from repro.benchgen import (
    bell_chain_benchmark,
    bell_chain_circuit,
    bell_chain_state,
    ghz_benchmark,
    ghz_circuit,
    ghz_state,
    inverse_qft_circuit,
    qft_circuit,
    qft_roundtrip_benchmark,
    qft_zero_benchmark,
    uniform_superposition_state,
)
from repro.core import AnalysisMode, verify_triple
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState, int_to_bits


# --------------------------------------------------------------------------- QFT circuits
def test_qft_circuit_gate_inventory():
    circuit = qft_circuit(4)
    assert circuit.count_kind("h") == 4
    assert circuit.count_kind("cs") == 3   # one per adjacent pair
    assert circuit.count_kind("ct") == 2   # one per distance-2 pair
    assert circuit.count_kind("swap") == 2


def test_qft_approximation_degree_limits_rotations():
    degree_two = qft_circuit(4, approximation_degree=2)
    assert degree_two.count_kind("ct") == 0
    assert degree_two.count_kind("cs") == 3
    degree_one = qft_circuit(4, approximation_degree=1)
    assert degree_one.count_kind("cs") == 0


def test_qft_rejects_unrepresentable_degree():
    with pytest.raises(ValueError):
        qft_circuit(4, approximation_degree=4)
    with pytest.raises(ValueError):
        qft_circuit(0)


def test_qft_of_zero_is_uniform_superposition(simulator):
    for num_qubits in (1, 2, 3):
        output = simulator.run(qft_circuit(num_qubits), QuantumState.zero_state(num_qubits))
        assert output == uniform_superposition_state(num_qubits)


def test_qft_on_three_qubits_matches_exact_dft(simulator):
    """Up to 3 qubits the AQFT with degree 3 *is* the exact QFT: check one non-trivial column."""
    import cmath
    import math

    num_qubits = 3
    circuit = qft_circuit(num_qubits)
    index = 5  # input |101>
    output = simulator.run(circuit, QuantumState.basis_state(num_qubits, index))
    dim = 1 << num_qubits
    for position in range(dim):
        expected = cmath.exp(2j * math.pi * index * position / dim) / math.sqrt(dim)
        got = output[int_to_bits(position, num_qubits)].to_complex()
        assert abs(got - expected) < 1e-9


def test_inverse_qft_undoes_qft(simulator):
    num_qubits = 3
    roundtrip = qft_circuit(num_qubits).concatenated(inverse_qft_circuit(num_qubits))
    for index in range(1 << num_qubits):
        initial = QuantumState.basis_state(num_qubits, index)
        assert simulator.run(roundtrip, initial) == initial


def test_inverse_qft_is_the_adjoint_unitary():
    result = check_unitary_equivalence(
        inverse_qft_circuit(3),
        Circuit_inverse_via_dagger(qft_circuit(3)),
    )
    assert result.equivalent


def Circuit_inverse_via_dagger(circuit):
    """Reference adjoint: reverse the gates and dagger each one."""
    from repro.circuits import Circuit

    inverse = Circuit(circuit.num_qubits, name=f"{circuit.name}_dagger")
    for gate in reversed(list(circuit)):
        inverse.append(gate.dagger())
    return inverse


# --------------------------------------------------------------------------- QFT benchmarks
@pytest.mark.parametrize("mode", [AnalysisMode.HYBRID, AnalysisMode.COMPOSITION])
def test_qft_zero_benchmark_holds(mode):
    benchmark = qft_zero_benchmark(3)
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition, mode=mode)
    assert result.holds


def test_qft_roundtrip_benchmark_holds():
    benchmark = qft_roundtrip_benchmark(3)
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
    assert result.holds


def test_qft_zero_benchmark_catches_injected_bug():
    benchmark = qft_zero_benchmark(3)
    buggy = benchmark.circuit.copy().add("z", 1)
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert not result.holds
    assert result.witness is not None


def test_qft_roundtrip_benchmark_catches_wrong_phase():
    benchmark = qft_roundtrip_benchmark(3)
    # replace one csdg by cs in the inverse half: the round trip is no longer the identity
    gates = list(benchmark.circuit)
    position = next(i for i, gate in enumerate(gates) if gate.kind == "csdg")
    from repro.circuits import Circuit, Gate

    gates[position] = Gate("cs", gates[position].qubits)
    buggy = Circuit(benchmark.circuit.num_qubits, gates)
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert not result.holds


# --------------------------------------------------------------------------- GHZ / Bell chain
def test_ghz_circuit_structure():
    circuit = ghz_circuit(5)
    assert circuit.count_kind("h") == 1
    assert circuit.count_kind("cx") == 4


def test_ghz_state_is_normalised():
    for num_qubits in (2, 3, 6):
        assert ghz_state(num_qubits).is_normalised()


def test_ghz_circuit_prepares_ghz_state(simulator):
    for num_qubits in (2, 3, 4):
        output = simulator.run(ghz_circuit(num_qubits), QuantumState.zero_state(num_qubits))
        assert output == ghz_state(num_qubits)


@pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
def test_ghz_benchmark_holds(num_qubits):
    benchmark = ghz_benchmark(num_qubits)
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
    assert result.holds


def test_ghz_benchmark_catches_missing_cnot():
    benchmark = ghz_benchmark(4)
    truncated = benchmark.circuit.without_gate(benchmark.circuit.num_gates - 1)
    result = verify_triple(benchmark.precondition, truncated, benchmark.postcondition)
    assert not result.holds


def test_ghz_rejects_single_qubit():
    with pytest.raises(ValueError):
        ghz_circuit(1)


def test_bell_chain_state_matches_simulation(simulator):
    for num_pairs in (1, 2, 3):
        circuit = bell_chain_circuit(num_pairs)
        output = simulator.run(circuit, QuantumState.zero_state(2 * num_pairs))
        assert output == bell_chain_state(num_pairs)


@pytest.mark.parametrize("num_pairs", [1, 2, 3])
def test_bell_chain_benchmark_holds(num_pairs):
    benchmark = bell_chain_benchmark(num_pairs)
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
    assert result.holds


def test_bell_chain_rejects_zero_pairs():
    with pytest.raises(ValueError):
        bell_chain_circuit(0)


def test_bell_chain_bug_detected():
    benchmark = bell_chain_benchmark(2)
    buggy = benchmark.circuit.copy().add("x", 0)
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert not result.holds
