"""Tests for the Cuccaro adder family and its classical-reference verification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import adder_benchmark, classical_addition, cuccaro_adder
from repro.circuits import Gate
from repro.core import verify_triple
from repro.simulator import StateVectorSimulator
from repro.states import QuantumState


def _adder_input(num_bits: int, a_value: int, b_value: int) -> QuantumState:
    bits = (0,)
    bits += tuple((a_value >> (num_bits - 1 - i)) & 1 for i in range(num_bits))
    bits += tuple((b_value >> (num_bits - 1 - i)) & 1 for i in range(num_bits))
    bits += (0,)
    return QuantumState.basis_state(2 * num_bits + 2, bits)


def _decode_output(state: QuantumState, num_bits: int):
    (bits, amplitude), = list(state.items())
    assert not amplitude.is_zero()
    carry_in = bits[0]
    a_value = int("".join(map(str, bits[1 : 1 + num_bits])), 2)
    b_value = int("".join(map(str, bits[1 + num_bits : 1 + 2 * num_bits])), 2)
    carry_out = bits[-1]
    return carry_in, a_value, b_value, carry_out


# --------------------------------------------------------------------------- classical model
def test_classical_addition_reference():
    assert classical_addition(3, 5, 4) == (8, 0)
    assert classical_addition(12, 7, 4) == (3, 1)
    assert classical_addition(15, 15, 4) == (14, 1)
    assert classical_addition(0, 0, 4) == (0, 0)


# --------------------------------------------------------------------------- circuit structure
def test_adder_gate_inventory():
    circuit = cuccaro_adder(4)
    # n MAJ blocks + n UMA blocks, each with one Toffoli, plus the carry-out CNOT
    assert circuit.count_kind("ccx") == 8
    assert circuit.count_kind("cx") == 4 * 4 + 1
    assert circuit.num_qubits == 10


def test_adder_rejects_zero_bits():
    with pytest.raises(ValueError):
        cuccaro_adder(0)


# --------------------------------------------------------------------------- functional correctness
@pytest.mark.parametrize("num_bits", [1, 2, 3])
def test_adder_adds_every_input_pair(num_bits, simulator):
    circuit = cuccaro_adder(num_bits)
    for a_value in range(1 << num_bits):
        for b_value in range(1 << num_bits):
            output = simulator.run(circuit, _adder_input(num_bits, a_value, b_value))
            carry_in, a_out, b_out, carry_out = _decode_output(output, num_bits)
            expected_sum, expected_carry = classical_addition(a_value, b_value, num_bits)
            assert carry_in == 0
            assert a_out == a_value          # the a register is restored
            assert b_out == expected_sum     # the b register holds the sum
            assert carry_out == expected_carry


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31))
def test_property_five_bit_addition(a_value, b_value):
    num_bits = 5
    circuit = cuccaro_adder(num_bits)
    output = StateVectorSimulator().run(circuit, _adder_input(num_bits, a_value, b_value))
    _carry_in, a_out, b_out, carry_out = _decode_output(output, num_bits)
    expected_sum, expected_carry = classical_addition(a_value, b_value, num_bits)
    assert (a_out, b_out, carry_out) == (a_value, expected_sum, expected_carry)


# --------------------------------------------------------------------------- verification triple
@pytest.mark.parametrize("num_bits", [2, 3])
def test_adder_benchmark_holds(num_bits):
    benchmark = adder_benchmark(num_bits)
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
    assert result.holds


def test_adder_benchmark_with_explicit_addend():
    benchmark = adder_benchmark(3, addend=5)
    result = verify_triple(benchmark.precondition, benchmark.circuit, benchmark.postcondition)
    assert result.holds
    assert "a=5" in benchmark.description


def test_adder_benchmark_catches_corrupted_a_register():
    benchmark = adder_benchmark(2)
    buggy = benchmark.circuit.copy().add("x", 1)   # the a register must come out unchanged
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert not result.holds
    assert result.witness is not None


def test_adder_benchmark_catches_dirty_carry_in():
    benchmark = adder_benchmark(2)
    buggy = benchmark.circuit.copy().add("x", 0)   # the carry-in ancilla must return to |0>
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert not result.holds


def test_adder_benchmark_catches_stray_hadamard():
    benchmark = adder_benchmark(2)
    buggy = benchmark.circuit.copy().add("h", 4)   # superposition outputs are never in the spec
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert not result.holds


def test_set_invisible_bug_is_documented_limitation():
    """Flipping the LSB of the sum permutes the expected output set onto itself,
    so the set-based check cannot see it — the paper's own caveat ("there can
    still be some bug that does not manifest in the set of output states")."""
    benchmark = adder_benchmark(2)
    buggy = benchmark.circuit.copy().add("x", 4)
    result = verify_triple(benchmark.precondition, buggy, benchmark.postcondition)
    assert result.holds
    # a single fixed input still exposes it, as the incremental hunter would:
    from repro.core import check_circuit_equivalence
    from repro.ta import basis_state_ta

    single = basis_state_ta(benchmark.circuit.num_qubits, (0, 1, 0, 0, 1, 0))
    outcome = check_circuit_equivalence(benchmark.circuit, buggy, single)
    assert outcome.non_equivalent


def test_adder_benchmark_rejects_out_of_range_addend():
    with pytest.raises(ValueError):
        adder_benchmark(2, addend=7)


def test_adder_benchmark_accepts_bitstring_addend():
    benchmark = adder_benchmark(3, addend="110")
    assert "a=6" in benchmark.description
